//! Edge cases and failure injection: resource exhaustion, recursion
//! limits, oversized programs, and error paths that must stay error paths.

use hipec_core::command::{build, ArithOp, CompOp, JumpMode, QueueEnd};
use hipec_core::{HipecError, HipecKernel, OperandDecl, PolicyProgram, NO_OPERAND};
use hipec_disk::{DeviceParams, DiskParams};
use hipec_vm::{KernelParams, VAddr, VmError, PAGE_SIZE};

fn params() -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    p.total_frames = 256;
    p.wired_frames = 8;
    p
}

fn simple_policy() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let fq = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    p.add_event(
        "PageFault",
        vec![build::dequeue(page, fq, QueueEnd::Head), build::ret(page)],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p
}

#[test]
fn backing_store_exhaustion_is_a_clean_error() {
    // A paging device with room for only 64 pages.
    let mut p = params();
    p.disk = DeviceParams::Disk(DiskParams {
        cylinders: 16, // 64 pages
        ..DiskParams::paper_scsi()
    });
    let mut k = HipecKernel::new(p);
    let task = k.vm.create_task();
    // First file fits.
    k.vm.vm_map(task, 32 * PAGE_SIZE).expect("fits");
    // Second file does not.
    let err = k.vm.vm_map(task, 64 * PAGE_SIZE).expect_err("disk is full");
    assert!(matches!(err, VmError::Backing(_)), "{err}");
    // The kernel keeps working afterwards.
    let (a, _) =
        k.vm.vm_allocate(task, 4 * PAGE_SIZE)
            .expect("anonymous still fine");
    k.access_sync(task, a, false).expect("fault");
}

#[test]
fn swap_exhaustion_surfaces_when_dirty_anonymous_pages_spill() {
    // Tiny disk, big dirty anonymous footprint: the pageout daemon must
    // eventually fail to allocate swap — as a clean error, not a panic.
    let mut p = params();
    p.total_frames = 64;
    p.disk = DeviceParams::Disk(DiskParams {
        cylinders: 8, // 32 pages of swap
        ..DiskParams::paper_scsi()
    });
    let mut k = HipecKernel::new(p);
    let task = k.vm.create_task();
    let (a, _) = k.vm.vm_allocate(task, 128 * PAGE_SIZE).expect("allocate");
    let mut failed = false;
    for page in 0..128u64 {
        match k.access_sync(task, VAddr(a.0 + page * PAGE_SIZE), true) {
            Ok(_) => k.vm.pump(),
            Err(HipecError::Vm(VmError::Backing(_))) => {
                failed = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(failed, "a 512 KB region cannot swap onto a 128 KB device");
}

#[test]
fn activate_recursion_depth_is_bounded() {
    // Event 2 activates itself: must die with DepthExceeded, not overflow
    // the host stack.
    let mut p = simple_policy();
    p.add_event("recurse", vec![build::activate(2), build::ret(NO_OPERAND)]);
    // Redirect PageFault into the recursion.
    let mut p2 = PolicyProgram::new();
    let _fq = p2.declare(OperandDecl::FreeQueue);
    let page = p2.declare(OperandDecl::Page);
    p2.add_event("PageFault", vec![build::activate(2), build::ret(page)]);
    p2.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p2.add_event("recurse", vec![build::activate(2), build::ret(NO_OPERAND)]);
    let mut k = HipecKernel::new(params());
    let task = k.vm.create_task();
    let (a, _o, key) = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, p2, 8)
        .expect("install");
    let err = k.access(task, a, false).expect_err("recursion dies");
    match err {
        HipecError::Terminated { reason, .. } => {
            assert!(reason.contains("deep"), "reason: {reason}")
        }
        other => panic!("unexpected: {other}"),
    }
    assert!(k.container(key).expect("container").terminated);
}

#[test]
fn programs_longer_than_256_commands_use_16_bit_targets() {
    // Build a 600-command PageFault: a long chain of Arith commands, a
    // jump over the back half, and a Return — exercising targets > 255.
    let mut p = PolicyProgram::new();
    let fq = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    let x = p.declare(OperandDecl::Int(0));
    let mut cmds = Vec::new();
    for _ in 0..300 {
        cmds.push(build::arith(x, x, ArithOp::Inc));
    }
    // Jump over 250 increments to the landing pad at cc 551.
    cmds.push(build::jump(JumpMode::Always, 551)); // cc 300
    for _ in 0..250 {
        cmds.push(build::arith(x, x, ArithOp::Inc)); // cc 301..=550 (skipped)
    }
    cmds.push(build::dequeue(page, fq, QueueEnd::Head)); // cc 551
    cmds.push(build::ret(page)); // cc 552
    p.add_event("PageFault", cmds);
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);

    let mut k = HipecKernel::new(params());
    let task = k.vm.create_task();
    let (a, _o, key) = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, p, 8)
        .expect("long program installs");
    k.access_sync(task, a, false).expect("fault resolves");
    let c = k.container(key).expect("container");
    // 300 increments + jump + dequeue + return = 303 commands interpreted.
    assert_eq!(c.stats.commands, 303);
    // The skipped increments never ran.
    assert_eq!(c.operands[2], hipec_core::OperandSlot::Int(300));
}

#[test]
fn operand_array_is_capped_at_255_slots() {
    let mut p = PolicyProgram::new();
    for _ in 0..254 {
        p.declare(OperandDecl::Int(0));
    }
    let last = p.declare(OperandDecl::Page); // slot 254: fine
    assert_eq!(last, 254);
    let result = std::panic::catch_unwind(move || {
        let mut p = p;
        p.declare(OperandDecl::Int(1)) // slot 255 would collide with NO_OPERAND
    });
    assert!(result.is_err(), "slot 255 must be rejected");
}

#[test]
fn access_after_termination_keeps_failing_cleanly() {
    // A policy that dies on its first fault; subsequent HiPEC accesses to
    // the same object return Terminated (until the region reverts).
    let mut p = PolicyProgram::new();
    let _fq = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    let q = p.declare(OperandDecl::Queue { recency: false });
    p.add_event(
        "PageFault",
        vec![build::dequeue(page, q, QueueEnd::Head), build::ret(page)],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    let mut k = HipecKernel::new(params());
    let task = k.vm.create_task();
    let (a, _o, _key) = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, p, 8)
        .expect("install");
    assert!(k.access(task, a, false).is_err(), "first fault kills");
    // The region reverted to default management on kill: this now works.
    k.access_sync(task, a, false)
        .expect("default pool serves it");
}

#[test]
fn zero_sized_regions_are_rejected() {
    let mut k = HipecKernel::new(params());
    let task = k.vm.create_task();
    let err = k
        .vm_allocate_hipec(task, 0, simple_policy(), 4)
        .expect_err("empty region");
    assert!(matches!(err, HipecError::Vm(VmError::EmptyRegion)));
}

#[test]
fn fuel_limit_is_configurable() {
    // A policy that takes ~40 commands per fault dies under a 10-command
    // fuel budget and is reported as a timeout (runaway).
    let mut p = PolicyProgram::new();
    let fq = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    let x = p.declare(OperandDecl::Int(0));
    let n = p.declare(OperandDecl::Int(10));
    p.add_event(
        "PageFault",
        vec![
            build::comp(x, n, CompOp::Lt),
            build::jump(JumpMode::IfFalse, 4),
            build::arith(x, x, ArithOp::Inc),
            build::jump(JumpMode::Always, 0),
            build::dequeue(page, fq, QueueEnd::Head),
            build::ret(page),
        ],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    let mut k = HipecKernel::new(params());
    k.limits.fuel = 10;
    let task = k.vm.create_task();
    let (a, _o, _key) = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, p.clone(), 8)
        .expect("install");
    let err = k.access(task, a, false).expect_err("fuel exhausted");
    assert!(matches!(err, HipecError::Terminated { .. }));

    // With ample fuel the same program completes.
    let mut k = HipecKernel::new(params());
    let task = k.vm.create_task();
    let (a, _o, _key) = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, p, 8)
        .expect("install");
    k.access_sync(task, a, false).expect("completes");
}

//! Per-command semantics: one focused scenario for every opcode in the
//! set, driven through the real executor via `run_event_raw`.

use hipec_core::command::{build, ArithOp, CompOp, JumpMode, LogicOp, PageBit, QueueEnd};
use hipec_core::{
    ContainerKey, ExecValue, HipecKernel, KernelVar, OperandDecl, PolicyProgram, NO_OPERAND,
};
use hipec_vm::{KernelParams, PAGE_SIZE};

/// Builds a kernel with one container running `program`, whose private
/// free queue holds `frames` frames.
fn setup(program: PolicyProgram, frames: u64) -> (HipecKernel, ContainerKey) {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 256;
    params.wired_frames = 8;
    params.free_target = 16;
    params.free_min = 8;
    let mut k = HipecKernel::new(params);
    let task = k.vm.create_task();
    let (_a, _o, key) = k
        .vm_allocate_hipec(task, 64 * PAGE_SIZE, program, frames)
        .expect("install");
    (k, key)
}

/// A program skeleton with the standard slots and one bench event (id 2).
fn with_event(decls: impl FnOnce(&mut PolicyProgram) -> Vec<hipec_core::RawCmd>) -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let cmds = decls(&mut p);
    // Mandatory events first.
    let fq_exists = p.decls.iter().any(|d| matches!(d, OperandDecl::FreeQueue));
    let fq = if fq_exists {
        p.decls
            .iter()
            .position(|d| matches!(d, OperandDecl::FreeQueue))
            .expect("checked") as u8
    } else {
        p.declare(OperandDecl::FreeQueue)
    };
    let pf_page = p.declare(OperandDecl::Page);
    p.add_event(
        "PageFault",
        vec![
            build::dequeue(pf_page, fq, QueueEnd::Head),
            build::ret(pf_page),
        ],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p.add_event("bench", cmds);
    p
}

#[test]
fn arith_all_operations() {
    let program = with_event(|p| {
        let _fq = p.declare(OperandDecl::FreeQueue);
        let a = p.declare(OperandDecl::Int(10));
        let b = p.declare(OperandDecl::Int(3));
        vec![
            build::arith(a, b, ArithOp::Add), // 13
            build::arith(a, b, ArithOp::Sub), // 10
            build::arith(a, b, ArithOp::Mul), // 30
            build::arith(a, b, ArithOp::Div), // 10
            build::arith(a, b, ArithOp::Mod), // 1
            build::arith(a, a, ArithOp::Inc), // 2
            build::arith(a, a, ArithOp::Inc), // 3
            build::arith(a, a, ArithOp::Dec), // 2
            build::arith(a, b, ArithOp::Mov), // 3
            build::arith(a, b, ArithOp::Mul), // 9
            build::ret(a),
        ]
    });
    let (mut k, key) = setup(program, 4);
    let v = k.run_event_raw(key, 2).expect("runs");
    assert_eq!(v, ExecValue::Int(9));
}

#[test]
fn comp_and_jump_modes() {
    // Returns 1 when 5 > 3 via jump-if-true, else 0; then an always-jump
    // over a poison path.
    let program = with_event(|p| {
        let _fq = p.declare(OperandDecl::FreeQueue);
        let five = p.declare(OperandDecl::Int(5));
        let three = p.declare(OperandDecl::Int(3));
        let out = p.declare(OperandDecl::Int(0));
        vec![
            build::comp(five, three, CompOp::Gt),
            build::jump(JumpMode::IfTrue, 3),
            build::ret(out), // not taken
            build::arith(out, out, ArithOp::Inc),
            build::jump(JumpMode::Always, 6),
            build::arith(out, out, ArithOp::Inc), // skipped
            build::ret(out),
        ]
    });
    let (mut k, key) = setup(program, 4);
    assert_eq!(k.run_event_raw(key, 2).expect("runs"), ExecValue::Int(1));
}

#[test]
fn logic_store_and_load_cond() {
    // cond = (5 > 3); store into flag; negate; return flag.
    let program = with_event(|p| {
        let _fq = p.declare(OperandDecl::FreeQueue);
        let five = p.declare(OperandDecl::Int(5));
        let three = p.declare(OperandDecl::Int(3));
        let flag = p.declare(OperandDecl::Bool(false));
        let other = p.declare(OperandDecl::Bool(true));
        vec![
            build::comp(five, three, CompOp::Gt),
            build::logic(flag, NO_OPERAND, LogicOp::StoreCond), // flag = true
            build::logic(flag, other, LogicOp::Xor),            // cond = true^true = false
            build::logic(flag, NO_OPERAND, LogicOp::StoreCond), // flag = false
            build::ret(flag),
        ]
    });
    let (mut k, key) = setup(program, 4);
    assert_eq!(
        k.run_event_raw(key, 2).expect("runs"),
        ExecValue::Bool(false)
    );
}

#[test]
fn queue_commands_emptyq_inq_dequeue_enqueue() {
    // Move a frame between two queues, checking membership along the way.
    // Returns 1 only if every check passes.
    let program = with_event(|p| {
        let fq = p.declare(OperandDecl::FreeQueue);
        let q2 = p.declare(OperandDecl::Queue { recency: false });
        let page = p.declare(OperandDecl::Page);
        let out = p.declare(OperandDecl::Int(0));
        vec![
            // q2 starts empty.
            build::emptyq(q2),
            build::jump(JumpMode::IfFalse, 12),
            // Take a frame from the free queue, put it on q2 at the head.
            build::dequeue(page, fq, QueueEnd::Head),
            build::enqueue(page, q2, QueueEnd::Head),
            // It is on q2 now…
            build::inq(q2, page),
            build::jump(JumpMode::IfFalse, 12),
            // …and q2 is no longer empty.
            build::emptyq(q2),
            build::jump(JumpMode::IfTrue, 12),
            // Take it back off the tail (same single element).
            build::dequeue(page, q2, QueueEnd::Tail),
            build::inq(q2, page),
            build::jump(JumpMode::IfTrue, 12),
            build::arith(out, out, ArithOp::Inc),
            build::ret(out),
        ]
    });
    let (mut k, key) = setup(program, 4);
    assert_eq!(k.run_event_raw(key, 2).expect("runs"), ExecValue::Int(1));
}

#[test]
fn set_ref_and_mod_bits() {
    let program = with_event(|p| {
        let fq = p.declare(OperandDecl::FreeQueue);
        let page = p.declare(OperandDecl::Page);
        let out = p.declare(OperandDecl::Int(0));
        vec![
            build::dequeue(page, fq, QueueEnd::Head),
            // Fresh free frame: neither bit set.
            build::is_ref(page),
            build::jump(JumpMode::IfTrue, 12),
            build::is_mod(page),
            build::jump(JumpMode::IfTrue, 12),
            // Set the reference bit, verify, clear it, verify.
            build::set(page, PageBit::Reference, true),
            build::is_ref(page),
            build::jump(JumpMode::IfFalse, 12),
            build::set(page, PageBit::Reference, false),
            build::is_ref(page),
            build::jump(JumpMode::IfTrue, 12),
            build::arith(out, out, ArithOp::Inc),
            build::ret(out),
        ]
    });
    let (mut k, key) = setup(program, 4);
    assert_eq!(k.run_event_raw(key, 2).expect("runs"), ExecValue::Int(1));
}

#[test]
fn find_resolves_mapped_addresses() {
    // Fault a page in through the normal path, then Find it by address.
    let program = with_event(|p| {
        let _fq = p.declare(OperandDecl::FreeQueue);
        let page = p.declare(OperandDecl::Page);
        let addr = p.declare(OperandDecl::Int(0)); // patched below via arith
        vec![build::find(page, addr), build::ret(page)]
    });
    let (mut k, key) = setup(program, 4);
    let task = k.containers[key.0 as usize].task;
    let base = {
        // The region the container controls starts at the first map entry.
        let entry = *k
            .vm
            .task(task)
            .expect("task")
            .map
            .iter()
            .next()
            .expect("mapped");
        hipec_vm::VAddr(entry.start_vpage * PAGE_SIZE)
    };
    k.access_sync(task, base, false).expect("fault in page 0");
    // Patch the address operand (slot layout: fq=0, page=1, addr=2 within
    // the bench decls — find the Int slot and set it).
    let addr_slot = k.containers[key.0 as usize]
        .operands
        .iter()
        .position(|s| matches!(s, hipec_core::OperandSlot::Int(0)))
        .expect("addr slot");
    k.containers[key.0 as usize].operands[addr_slot] = hipec_core::OperandSlot::Int(base.0 as i64);
    let v = k.run_event_raw(key, 2).expect("runs");
    let expected =
        k.vm.task(task)
            .expect("task")
            .translate(base.vpage())
            .expect("mapped");
    assert_eq!(v, ExecValue::Page(expected));
}

#[test]
fn request_release_round_trip() {
    // Request 4 frames, then release one; allocation accounting follows.
    let program = with_event(|p| {
        let fq = p.declare(OperandDecl::FreeQueue);
        let four = p.declare(OperandDecl::Int(4));
        let granted = p.declare(OperandDecl::Int(0));
        let page = p.declare(OperandDecl::Page);
        vec![
            build::request(four, granted),
            build::jump(JumpMode::IfFalse, 4),
            build::dequeue(page, fq, QueueEnd::Head),
            build::release(page),
            build::ret(granted),
        ]
    });
    let (mut k, key) = setup(program, 8);
    let before = k.container(key).expect("container").allocated;
    let v = k.run_event_raw(key, 2).expect("runs");
    assert_eq!(v, ExecValue::Int(4));
    assert_eq!(
        k.container(key).expect("container").allocated,
        before + 4 - 1
    );
}

#[test]
fn complex_commands_report_success_and_failure() {
    // FIFO on an empty queue sets the condition flag false; after an
    // enqueue it reclaims and reports true.
    let program = with_event(|p| {
        let fq = p.declare(OperandDecl::FreeQueue);
        let q2 = p.declare(OperandDecl::Queue { recency: false });
        let page = p.declare(OperandDecl::Page);
        let out = p.declare(OperandDecl::Int(0));
        vec![
            build::fifo(q2, NO_OPERAND), // empty: cond = false
            build::jump(JumpMode::IfTrue, 8),
            build::dequeue(page, fq, QueueEnd::Head),
            build::enqueue(page, q2, QueueEnd::Tail),
            build::fifo(q2, page), // reclaims the page: cond = true
            build::jump(JumpMode::IfFalse, 8),
            build::arith(out, out, ArithOp::Inc),
            build::ret(out),
            build::ret(out),
        ]
    });
    let (mut k, key) = setup(program, 4);
    assert_eq!(k.run_event_raw(key, 2).expect("runs"), ExecValue::Int(1));
    // The reclaimed page landed on the container free queue.
    let free_q = k.containers[key.0 as usize].free_q;
    assert_eq!(k.vm.frames.queue_len(free_q).expect("len"), 4);
}

#[test]
fn return_of_each_value_kind() {
    for (decl, expected) in [
        (OperandDecl::Int(-7), ExecValue::Int(-7)),
        (OperandDecl::Bool(true), ExecValue::Bool(true)),
    ] {
        let program = with_event(|p| {
            let _fq = p.declare(OperandDecl::FreeQueue);
            let slot = p.declare(decl);
            vec![build::ret(slot)]
        });
        let (mut k, key) = setup(program, 2);
        assert_eq!(k.run_event_raw(key, 2).expect("runs"), expected);
    }
    // Kernel variables return their current value.
    let program = with_event(|p| {
        let _fq = p.declare(OperandDecl::FreeQueue);
        let kv = p.declare(OperandDecl::Kernel(KernelVar::AllocatedCount));
        vec![build::ret(kv)]
    });
    let (mut k, key) = setup(program, 6);
    assert_eq!(k.run_event_raw(key, 2).expect("runs"), ExecValue::Int(6));
    // Return with no operand.
    let program = with_event(|p| {
        let _fq = p.declare(OperandDecl::FreeQueue);
        vec![build::ret(NO_OPERAND)]
    });
    let (mut k, key) = setup(program, 2);
    assert_eq!(k.run_event_raw(key, 2).expect("runs"), ExecValue::None);
}

#[test]
fn activate_calls_and_discards_value() {
    // bench (event 2) activates event 3, which modifies a shared counter
    // and returns a value that must be discarded.
    let mut p = PolicyProgram::new();
    let fq = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    let counter = p.declare(OperandDecl::Int(0));
    p.add_event(
        "PageFault",
        vec![build::dequeue(page, fq, QueueEnd::Head), build::ret(page)],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p.add_event(
        "bench",
        vec![build::activate(3), build::activate(3), build::ret(counter)],
    );
    p.add_event(
        "helper",
        vec![
            build::arith(counter, counter, ArithOp::Inc),
            build::ret(counter),
        ],
    );
    let (mut k, key) = setup(p, 2);
    assert_eq!(k.run_event_raw(key, 2).expect("runs"), ExecValue::Int(2));
}

#[test]
fn division_by_zero_is_a_policy_fault() {
    let program = with_event(|p| {
        let _fq = p.declare(OperandDecl::FreeQueue);
        let a = p.declare(OperandDecl::Int(1));
        let zero = p.declare(OperandDecl::Int(0));
        vec![build::arith(a, zero, ArithOp::Div), build::ret(a)]
    });
    let (mut k, key) = setup(program, 2);
    let err = k.run_event_raw(key, 2).expect_err("div by zero");
    assert!(matches!(err, hipec_core::PolicyFault::DivideByZero { .. }));
}

//! Wall-clock overhead measurement for the `metrics` feature.
//!
//! Ignored by default: this is a measurement harness, not a correctness
//! test. It drives a pressured FIFO policy soak (faults, replacements,
//! flush exchanges, pump) twice — once bare (worst case: nothing but the
//! kernel hot loop) and once with a `JsonlSink` streaming to disk (the
//! `trace_soak` deployment shape the ≤ 5% soak budget is stated
//! against) — and prints the elapsed wall times, so the same binary can
//! be timed with the recording sites compiled in and out:
//!
//! ```text
//! cargo test --release -p hipec-core --test overhead -- --ignored --nocapture
//! cargo test --release -p hipec-core --no-default-features --features trace,jit \
//!   --test overhead -- --ignored --nocapture
//! ```
//!
//! EXPERIMENTS.md records the measured numbers; the acceptance bound for
//! the metrics feature is ≤ 5% overhead on the sink-attached soak.

use std::time::Instant;

use hipec_core::command::{build, ArithOp, CompOp, JumpMode, QueueEnd};
use hipec_core::{HipecKernel, KernelVar, OperandDecl, PolicyProgram, NO_OPERAND};
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

/// The Table 2-style FIFO policy: private free queue, FIFO eviction via a
/// reclaim helper, fault order remembered on a plain queue.
fn fifo_policy() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let free_q = p.declare(OperandDecl::FreeQueue);
    let fifo_q = p.declare(OperandDecl::Queue { recency: false });
    let page = p.declare(OperandDecl::Page);
    let free_count = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
    let zero = p.declare(OperandDecl::Int(0));
    p.add_event(
        "PageFault",
        vec![
            build::comp(free_count, zero, CompOp::Gt),
            build::jump(JumpMode::IfFalse, 3),
            build::jump(JumpMode::Always, 4),
            build::activate(2),
            build::dequeue(page, free_q, QueueEnd::Head),
            build::enqueue(page, fifo_q, QueueEnd::Tail),
            build::ret(page),
        ],
    );
    let want = p.declare(OperandDecl::Kernel(KernelVar::ReclaimTarget));
    let released = p.declare(OperandDecl::Int(0));
    let rpage = p.declare(OperandDecl::Page);
    p.add_event(
        "ReclaimFrame",
        vec![
            build::arith(released, zero, ArithOp::Mov),
            build::comp(released, want, CompOp::Lt),
            build::jump(JumpMode::IfFalse, 10),
            build::emptyq(free_q),
            build::jump(JumpMode::IfFalse, 6),
            build::fifo(fifo_q, rpage),
            build::dequeue(rpage, free_q, QueueEnd::Head),
            build::release(rpage),
            build::arith(released, zero, ArithOp::Inc),
            build::jump(JumpMode::Always, 1),
            build::ret(NO_OPERAND),
        ],
    );
    p.add_event(
        "Lack_free_frame",
        vec![build::fifo(fifo_q, page), build::ret(NO_OPERAND)],
    );
    p
}

/// Builds the pressured kernel, optionally attaches a JSONL sink, drives
/// `steps` references, and reports elapsed wall time plus the recorded
/// sample count.
fn run_soak(steps: u64, sink_path: Option<&std::path::Path>) -> (f64, u64) {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 256;
    params.wired_frames = 16;
    params.free_target = 16;
    params.free_min = 8;
    params.inactive_target = 32;

    let mut k = HipecKernel::new(params);
    #[cfg(feature = "trace")]
    if let Some(path) = sink_path {
        let file = std::fs::File::create(path).expect("create sink file");
        let sink = hipec_core::JsonlSink::new(std::io::BufWriter::new(file));
        k.set_sink(Box::new(std::rc::Rc::new(std::cell::RefCell::new(sink))));
    }
    #[cfg(not(feature = "trace"))]
    let _ = sink_path;
    let task = k.vm.create_task();
    let pages = 64u64;
    let (base, _obj, _key) = k
        .vm_allocate_hipec(task, pages * PAGE_SIZE, fifo_policy(), 32)
        .expect("install");

    let t0 = Instant::now();
    for s in 0..steps {
        let p = (s * 7 + 3) % pages;
        k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), s % 2 == 0)
            .expect("pressured access");
        k.pump();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = k.kernel_stats();
    let recorded: u64 = stats.latency.iter().map(|r| r.count()).sum();
    if sink_path.is_none() {
        let mut by_metric: std::collections::BTreeMap<&str, u64> = Default::default();
        for r in &stats.latency {
            *by_metric.entry(r.metric.name()).or_insert(0) += r.count();
        }
        for (m, n) in by_metric {
            println!("  {m}: {n}");
        }
    }
    (elapsed, recorded)
}

#[test]
#[ignore = "measurement harness, see EXPERIMENTS.md"]
fn metrics_overhead_soak() {
    const STEPS: u64 = 400_000;
    let (bare, recorded) = run_soak(STEPS, None);
    println!(
        "metrics_overhead_soak[bare]: {STEPS} refs in {bare:.3}s ({:.0} refs/s), \
         {recorded} histogram samples recorded",
        STEPS as f64 / bare,
    );
    #[cfg(feature = "trace")]
    {
        let sink_path =
            std::env::temp_dir().join(format!("hipec_overhead_{}.jsonl", std::process::id()));
        let (sunk, _) = run_soak(STEPS, Some(&sink_path));
        let _ = std::fs::remove_file(&sink_path);
        println!(
            "metrics_overhead_soak[jsonl sink]: {STEPS} refs in {sunk:.3}s ({:.0} refs/s)",
            STEPS as f64 / sunk,
        );
    }
}

//! Integration tests for the policy executor, global frame manager and
//! security checker, driving real faults through interpreted policies.

use hipec_core::command::{build, ArithOp, CompOp, JumpMode, QueueEnd};
use hipec_core::{
    ContainerKey, HipecError, HipecKernel, KernelVar, OperandDecl, PolicyProgram, NO_OPERAND,
};
use hipec_sim::SimDuration;
use hipec_vm::{KernelParams, TaskId, VAddr, PAGE_SIZE};

fn small_params() -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    p.total_frames = 256;
    p.wired_frames = 16;
    p.free_target = 16;
    p.free_min = 8;
    p.inactive_target = 32;
    p
}

/// A FIFO policy in the Table 2 style: PageFault takes from the private
/// free queue, activating a reclaim helper when it runs dry; the helper
/// does FIFO-with-eviction from the fifo queue. Faulted pages are enqueued
/// onto the fifo queue by the PageFault event itself.
fn fifo_policy() -> (PolicyProgram, u8) {
    let mut p = PolicyProgram::new();
    let free_q = p.declare(OperandDecl::FreeQueue);
    let fifo_q = p.declare(OperandDecl::Queue { recency: false });
    let page = p.declare(OperandDecl::Page);
    let free_count = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
    let zero = p.declare(OperandDecl::Int(0));
    // PageFault:
    //   0: if free_count > 0
    //   1:   (else) jump 3
    //   2:   jump 4            ; skip the reclaim
    //   3: activate 2          ; Lack_free_frame
    //   4: page = dequeue_head(free_q)
    //   5: enqueue_tail(fifo_q, page)   ; remember fault order
    //   6: return page
    p.add_event(
        "PageFault",
        vec![
            build::comp(free_count, zero, CompOp::Gt),
            build::jump(JumpMode::IfFalse, 3),
            build::jump(JumpMode::Always, 4),
            build::activate(2),
            build::dequeue(page, free_q, QueueEnd::Head),
            build::enqueue(page, fifo_q, QueueEnd::Tail),
            build::ret(page),
        ],
    );
    // ReclaimFrame: release `ReclaimTarget` frames, serving from the free
    // queue and FIFO-evicting when it runs dry.
    let want = p.declare(OperandDecl::Kernel(KernelVar::ReclaimTarget));
    let released = p.declare(OperandDecl::Int(0));
    let rpage = p.declare(OperandDecl::Page);
    p.add_event(
        "ReclaimFrame",
        vec![
            // 0: released = 0
            build::arith(released, zero, ArithOp::Mov),
            // 1: while released < want
            build::comp(released, want, CompOp::Lt),
            build::jump(JumpMode::IfFalse, 10),
            // 3: if the free queue is empty, FIFO-evict one page into it
            build::emptyq(free_q),
            build::jump(JumpMode::IfFalse, 6),
            build::fifo(fifo_q, rpage),
            // 6: hand one free frame back to the global frame manager
            build::dequeue(rpage, free_q, QueueEnd::Head),
            build::release(rpage),
            build::arith(released, zero, ArithOp::Inc),
            build::jump(JumpMode::Always, 1),
            // 10:
            build::ret(NO_OPERAND),
        ],
    );
    // Lack_free_frame: FIFO-evict one page into the free queue.
    p.add_event(
        "Lack_free_frame",
        vec![build::fifo(fifo_q, page), build::ret(NO_OPERAND)],
    );
    (p, fifo_q)
}

fn touch_all(
    k: &mut HipecKernel,
    task: TaskId,
    base: VAddr,
    pages: u64,
    write: bool,
) -> Result<(), HipecError> {
    for i in 0..pages {
        k.access_sync(task, VAddr(base.0 + i * PAGE_SIZE), write)?;
        k.vm.pump();
    }
    Ok(())
}

#[test]
fn fifo_policy_serves_faults_and_replaces_under_pressure() {
    let (program, _) = fifo_policy();
    let mut k = HipecKernel::new(small_params());
    let task = k.vm.create_task();
    let min = 32;
    let pages = 64u64; // twice the private pool
    let (addr, _obj, key) = k
        .vm_allocate_hipec(task, pages * PAGE_SIZE, program, min)
        .expect("install");
    touch_all(&mut k, task, addr, pages, false).expect("sequential sweep");
    let c = k.container(key).expect("container");
    assert_eq!(
        c.stats.faults, pages,
        "every page faults once on first touch"
    );
    assert_eq!(c.allocated, min, "allocation stays at minFrame");
    assert!(c.stats.commands > 0);
    // A second sweep over a FIFO-managed pool smaller than the region
    // faults on every page again (cyclic behaviour).
    touch_all(&mut k, task, addr, pages, false).expect("second sweep");
    let c = k.container(key).expect("container");
    assert_eq!(c.stats.faults, 2 * pages);
}

#[test]
fn dirty_pages_flow_through_flush_exchange() {
    let (program, _) = fifo_policy();
    let mut k = HipecKernel::new(small_params());
    let task = k.vm.create_task();
    let pages = 64u64;
    let (addr, _obj, key) = k
        .vm_allocate_hipec(task, pages * PAGE_SIZE, program, 32)
        .expect("install");
    touch_all(&mut k, task, addr, pages, true).expect("dirtying sweep");
    let c = k.container(key).expect("container");
    assert!(c.stats.flushes > 0, "dirty victims must be flush-exchanged");
    assert_eq!(c.allocated, 32, "exchange preserves the allocation");
    assert!(k.vm.stats.get("pageouts") > 0);
}

#[test]
fn mru_policy_on_cyclic_scan_beats_fifo() {
    // MRU keeps the first `min` pages resident across sweeps; FIFO evicts
    // everything cyclically. This is the essence of the paper's Figure 6.
    fn mru_policy() -> PolicyProgram {
        let mut p = PolicyProgram::new();
        let free_q = p.declare(OperandDecl::FreeQueue);
        let recency_q = p.declare(OperandDecl::Queue { recency: true });
        let page = p.declare(OperandDecl::Page);
        let free_count = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
        let zero = p.declare(OperandDecl::Int(0));
        p.add_event(
            "PageFault",
            vec![
                build::comp(free_count, zero, CompOp::Gt),
                build::jump(JumpMode::IfFalse, 3),
                build::jump(JumpMode::Always, 4),
                build::mru(recency_q, page),
                build::dequeue(page, free_q, QueueEnd::Head),
                build::enqueue(page, recency_q, QueueEnd::Tail),
                build::ret(page),
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        p
    }
    let min = 32u64;
    let pages = 48u64;
    let sweeps = 4u64;

    let run = |program: PolicyProgram| -> u64 {
        let mut k = HipecKernel::new(small_params());
        let task = k.vm.create_task();
        let (addr, _obj, key) = k
            .vm_allocate_hipec(task, pages * PAGE_SIZE, program, min)
            .expect("install");
        for _ in 0..sweeps {
            touch_all(&mut k, task, addr, pages, false).expect("sweep");
        }
        k.container(key).expect("container").stats.faults
    };

    let fifo_faults = run(fifo_policy().0);
    let mru_faults = run(mru_policy());
    // FIFO on a cyclic scan larger than memory faults every access — the
    // paper's PF_l formula.
    assert_eq!(fifo_faults, pages * sweeps);
    // MRU matches the paper's PF_m formula exactly:
    // (OutLSize − MSize)·(Loop − 1) + OutLSize, in pages.
    let expected_mru = (pages - min) * (sweeps - 1) + pages;
    assert_eq!(mru_faults, expected_mru);
    assert!(mru_faults < fifo_faults);
}

#[test]
fn min_frames_admission_is_enforced() {
    let (program, _) = fifo_policy();
    let mut k = HipecKernel::new(small_params()); // 240 pageable
    let task = k.vm.create_task();
    let err = k
        .vm_allocate_hipec(task, 64 * PAGE_SIZE, program, 100_000)
        .expect_err("cannot admit");
    assert!(matches!(err, HipecError::MinFramesUnavailable { .. }));
}

#[test]
fn invalid_program_is_rejected_at_install() {
    let mut p = PolicyProgram::new();
    let q = p.declare(OperandDecl::FreeQueue);
    // Comp on queues: type error.
    p.add_event(
        "PageFault",
        vec![build::comp(q, q, CompOp::Gt), build::ret(NO_OPERAND)],
    );
    let mut k = HipecKernel::new(small_params());
    let task = k.vm.create_task();
    let err = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, p, 4)
        .expect_err("must be rejected");
    assert!(matches!(err, HipecError::InvalidProgram(_)));
}

#[test]
fn runaway_policy_is_terminated_by_the_checker() {
    // PageFault spins forever; the checker must detect the timeout and
    // terminate the application, and its interval must have shrunk.
    let mut p = PolicyProgram::new();
    let _free_q = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    p.add_event(
        "PageFault",
        vec![build::jump(JumpMode::Always, 0), build::ret(page)],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    let mut k = HipecKernel::new(small_params());
    let task = k.vm.create_task();
    let (addr, _obj, key) = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, p, 4)
        .expect("install");
    let before_interval = k.checker.interval;
    let err = k.access(task, addr, false).expect_err("runaway");
    match err {
        HipecError::Terminated { reason, .. } => {
            assert!(reason.contains("timeout"), "reason: {reason}");
        }
        other => panic!("unexpected error {other}"),
    }
    assert!(k.container(key).expect("container").terminated);
    assert_eq!(k.checker.kills, 1);
    assert!(
        k.checker.interval < before_interval || k.checker.interval == k.checker.min_interval,
        "detection must halve the wakeup interval"
    );
    // The container's frames all returned to the global pool.
    assert_eq!(k.container(key).expect("container").allocated, 0);
    // Subsequent accesses to the (reverted) region still work via the
    // default pool.
    k.access_sync(task, addr, false).expect("default path");
}

#[test]
fn type_confusion_at_runtime_terminates_the_app() {
    // Statically valid (indices in range, right decl kinds) but the policy
    // dequeues from an empty queue and then enqueues the empty page slot.
    let mut p = PolicyProgram::new();
    let free_q = p.declare(OperandDecl::FreeQueue);
    let q2 = p.declare(OperandDecl::Queue { recency: false });
    let page = p.declare(OperandDecl::Page);
    p.add_event(
        "PageFault",
        vec![
            build::dequeue(page, q2, QueueEnd::Head), // q2 is empty → page = None
            build::enqueue(page, free_q, QueueEnd::Tail), // EmptyPageSlot fault
            build::ret(page),
        ],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    let mut k = HipecKernel::new(small_params());
    let task = k.vm.create_task();
    let (addr, _obj, key) = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, p, 4)
        .expect("install");
    let err = k.access(task, addr, false).expect_err("policy fault");
    assert!(matches!(err, HipecError::Terminated { .. }));
    assert!(k.container(key).expect("container").terminated);
}

#[test]
fn request_grows_the_private_pool_and_respects_availability() {
    // PageFault requests 8 more frames whenever the free queue is empty.
    let mut p = PolicyProgram::new();
    let free_q = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    let free_count = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
    let zero = p.declare(OperandDecl::Int(0));
    let eight = p.declare(OperandDecl::Int(8));
    let granted = p.declare(OperandDecl::Int(0));
    p.add_event(
        "PageFault",
        vec![
            build::comp(free_count, zero, CompOp::Gt),
            build::jump(JumpMode::IfTrue, 2),
            build::request(eight, granted),
            build::dequeue(page, free_q, QueueEnd::Head),
            build::ret(page),
        ],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    let mut k = HipecKernel::new(small_params());
    let task = k.vm.create_task();
    let pages = 40u64;
    let (addr, _obj, key) = k
        .vm_allocate_hipec(task, pages * PAGE_SIZE, p, 8)
        .expect("install");
    touch_all(&mut k, task, addr, pages, false).expect("sweep");
    let c = k.container(key).expect("container");
    assert!(c.allocated >= pages, "pool grew to cover the region");
    assert!(c.stats.requested >= pages - 8);
    assert!(k.gfm.grants > 0);
}

#[test]
fn partition_burst_caps_specific_allocation() {
    let (program, _) = fifo_policy();
    let mut k = HipecKernel::new(small_params()); // 240 free at boot → burst 120
    assert_eq!(k.gfm.partition_burst, 120);
    let t1 = k.vm.create_task();
    let (_a1, _o1, k1) = k
        .vm_allocate_hipec(t1, 64 * PAGE_SIZE, program.clone(), 100)
        .expect("first app");
    let t2 = k.vm.create_task();
    // Admitting the second app pushes the specific total to 200 > 120;
    // balance reclaims the first app's surplus (down to its minFrame).
    let (_a2, _o2, k2) = k
        .vm_allocate_hipec(t2, 64 * PAGE_SIZE, program, 100)
        .expect("second app");
    k.balance();
    let total = k.specific_total();
    assert!(
        total <= 210,
        "specific total {total} should be pulled toward the burst"
    );
    let _ = (k1, k2);
}

#[test]
fn migrate_moves_frames_between_containers() {
    // Container 0's PageFault migrates a frame to container 1 before
    // serving the fault (contrived, but exercises the command).
    let mut p = PolicyProgram::new();
    let free_q = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    let target = p.declare(OperandDecl::Int(1));
    p.add_event(
        "PageFault",
        vec![
            build::migrate(target),
            build::dequeue(page, free_q, QueueEnd::Head),
            build::ret(page),
        ],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);

    let (plain, _) = fifo_policy();
    let mut k = HipecKernel::new(small_params());
    let t0 = k.vm.create_task();
    let (addr0, _o0, key0) = k
        .vm_allocate_hipec(t0, 8 * PAGE_SIZE, p, 8)
        .expect("migrating app");
    let t1 = k.vm.create_task();
    let (_addr1, _o1, key1) = k
        .vm_allocate_hipec(t1, 8 * PAGE_SIZE, plain, 8)
        .expect("receiving app");
    assert_eq!(key0, ContainerKey(0));
    assert_eq!(key1, ContainerKey(1));
    k.access_sync(t0, addr0, false)
        .expect("fault with migration");
    assert_eq!(k.container(key0).expect("c0").allocated, 7);
    assert_eq!(k.container(key1).expect("c1").allocated, 9);
}

/// A FIFO policy that grows its pool with `Request` and evicts only when
/// the global frame manager rejects the request.
fn growing_fifo_policy() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let free_q = p.declare(OperandDecl::FreeQueue);
    let fifo_q = p.declare(OperandDecl::Queue { recency: false });
    let page = p.declare(OperandDecl::Page);
    let free_count = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
    let zero = p.declare(OperandDecl::Int(0));
    let eight = p.declare(OperandDecl::Int(8));
    let granted = p.declare(OperandDecl::Int(0));
    p.add_event(
        "PageFault",
        vec![
            build::comp(free_count, zero, CompOp::Gt),
            build::jump(JumpMode::IfTrue, 5),
            build::request(eight, granted),
            build::jump(JumpMode::IfTrue, 5),
            build::fifo(fifo_q, page),
            build::dequeue(page, free_q, QueueEnd::Head),
            build::enqueue(page, fifo_q, QueueEnd::Tail),
            build::ret(page),
        ],
    );
    let want = p.declare(OperandDecl::Kernel(KernelVar::ReclaimTarget));
    let released = p.declare(OperandDecl::Int(0));
    let rpage = p.declare(OperandDecl::Page);
    p.add_event(
        "ReclaimFrame",
        vec![
            build::arith(released, zero, ArithOp::Mov),
            build::comp(released, want, CompOp::Lt),
            build::jump(JumpMode::IfFalse, 10),
            build::emptyq(free_q),
            build::jump(JumpMode::IfFalse, 6),
            build::fifo(fifo_q, rpage),
            build::dequeue(rpage, free_q, QueueEnd::Head),
            build::release(rpage),
            build::arith(released, zero, ArithOp::Inc),
            build::jump(JumpMode::Always, 1),
            build::ret(NO_OPERAND),
        ],
    );
    p
}

#[test]
fn normal_reclamation_runs_the_reclaim_event_in_fafr_order() {
    let mut k = HipecKernel::new(small_params()); // 240 free at boot
                                                  // App 1 starts at minFrame 8 and grows its pool to cover its 80-page
                                                  // region via Request, building up surplus.
    let t1 = k.vm.create_task();
    let (a1, _o1, key1) = k
        .vm_allocate_hipec(t1, 80 * PAGE_SIZE, growing_fifo_policy(), 8)
        .expect("first app");
    touch_all(&mut k, t1, a1, 80, false).expect("populate first app");
    let grown = k.container(key1).expect("first container").allocated;
    assert!(grown > 40, "app 1 grew its pool (has {grown})");
    // App 2 takes a large fixed slice of the pool.
    let (program2, _) = fifo_policy();
    let t2 = k.vm.create_task();
    k.vm_allocate_hipec(t2, 100 * PAGE_SIZE, program2, 100)
        .expect("second app");
    // App 3's minFrame cannot be met from the free pool alone: the manager
    // must run app 1's ReclaimFrame event (FAFR: first allocated first).
    let (program3, _) = fifo_policy();
    let t3 = k.vm.create_task();
    k.vm_allocate_hipec(t3, 100 * PAGE_SIZE, program3, 100)
        .expect("third app admits by reclaiming from the first");
    let c1 = k.container(key1).expect("first container");
    assert!(
        c1.allocated < grown,
        "the first-allocated app must have been reclaimed from ({} -> {})",
        grown,
        c1.allocated
    );
    assert!(k.gfm.normal_reclaims > 0, "ReclaimFrame event did the work");
}

#[test]
fn checker_interval_doubles_when_idle() {
    let (program, _) = fifo_policy();
    let mut k = HipecKernel::new(small_params());
    let task = k.vm.create_task();
    let (addr, _obj, _key) = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, program, 8)
        .expect("install");
    k.access_sync(task, addr, false).expect("one fault");
    // Idle for a long stretch of virtual time: wakeups fire, none detect a
    // timeout, the interval climbs to the 8 s ceiling.
    k.vm.charge(SimDuration::from_secs(120));
    k.poll_checker();
    assert!(k.checker.wakeups >= 5);
    assert_eq!(k.checker.interval, k.checker.max_interval);
    assert_eq!(k.checker.kills, 0);
}

#[test]
fn vm_deallocate_hipec_returns_every_frame() {
    let (program, _) = fifo_policy();
    let mut k = HipecKernel::new(small_params());
    let task = k.vm.create_task();
    let free_before = k.vm.free_count();
    let (addr, _obj, key) = k
        .vm_allocate_hipec(task, 64 * PAGE_SIZE, program, 48)
        .expect("install");
    // Populate with dirty pages so teardown has to discard modified data.
    touch_all(&mut k, task, addr, 64, true).expect("dirty sweep");
    assert!(k.specific_total() > 0);
    let freed = k.vm_deallocate_hipec(task, addr, key).expect("deallocate");
    assert!(freed >= 48, "all {freed} private frames must come back");
    assert_eq!(k.container(key).expect("container").allocated, 0);
    assert_eq!(k.specific_total(), 0);
    // Wait out every in-flight flush, then the pool must be whole again.
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.vm.pump();
    }
    assert_eq!(k.vm.free_count(), free_before);
    // The region is gone: accesses now fault as unmapped.
    assert!(k.access(task, addr, false).is_err());
    // The address range is reusable.
    let (program2, _) = fifo_policy();
    k.vm_allocate_hipec(task, 64 * PAGE_SIZE, program2, 48)
        .expect("range and frames are reusable");
}

#[test]
fn deallocate_unknown_container_fails() {
    let mut k = HipecKernel::new(small_params());
    let task = k.vm.create_task();
    assert!(k
        .vm_deallocate_hipec(task, hipec_vm::VAddr(0x1000), ContainerKey(42))
        .is_err());
}

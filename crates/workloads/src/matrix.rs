//! Out-of-core matrix multiplication — the paper's scientific-simulator
//! motivation (its introduction cites particle simulators \[23\] among the
//! memory-intensive applications a fixed LRU-like policy serves badly).
//!
//! `C = A × B` with row-major matrices larger than memory. Two traversal
//! orders:
//!
//! * **naive** (`ijk`): for each output row, B is swept column-major —
//!   every element of B is touched once per row of A, a cyclic whole-matrix
//!   scan that thrashes LRU exactly like the join's outer table (MRU holds
//!   a stable prefix of B);
//! * **blocked** (`tiled`): classic cache blocking with tiles sized to the
//!   private pool — the working set fits, any policy only takes compulsory
//!   faults, and the *application* (not the kernel) made it so.
//!
//! The experiment's point is the paper's: the right behaviour is
//! application knowledge. HiPEC lets the naive program fix its policy
//! (MRU), and lets the blocked program rely on its own locality.

use hipec_core::{HipecError, HipecKernel, KernelStats, PolicyProgram};
use hipec_sim::SimDuration;
use hipec_vm::{KernelParams, TaskId, VAddr, PAGE_SIZE};

/// Matrix-multiply configuration.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Matrix dimension (n × n, 8-byte elements).
    pub n: u64,
    /// Tile edge for the blocked variant, in elements.
    pub tile: u64,
    /// Private pool for the B-matrix region, in pages.
    pub pool_pages: u64,
    /// Machine parameters.
    pub params: KernelParams,
}

impl MatrixConfig {
    /// A 768×768 multiply (4.5 MB per matrix) over a 2 MB pool.
    pub fn small() -> Self {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 4_096;
        params.wired_frames = 64;
        MatrixConfig {
            n: 768,
            tile: 256,
            pool_pages: 512,
            params,
        }
    }

    /// Bytes per matrix.
    pub fn matrix_bytes(&self) -> u64 {
        self.n * self.n * 8
    }

    /// Elements per page (4096 / 8).
    pub fn elems_per_page(&self) -> u64 {
        PAGE_SIZE / 8
    }
}

/// Result of one multiply.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Faults in the B-matrix region (the one under specific control).
    pub b_faults: u64,
    /// Elapsed virtual time.
    pub elapsed: SimDuration,
    /// Kernel counter activity during the multiply (diff of snapshots
    /// taken after setup and at the end).
    pub stats: KernelStats,
}

struct Mm {
    k: HipecKernel,
    task: TaskId,
    b_base: VAddr,
    key: hipec_core::ContainerKey,
    cfg: MatrixConfig,
}

impl Mm {
    fn new(cfg: &MatrixConfig, policy: PolicyProgram) -> Result<Self, HipecError> {
        let mut k = HipecKernel::new(cfg.params.clone());
        let task = k.vm.create_task();
        // A and C stream row-major with strong locality; model their cost
        // as per-element compute below and keep only B under page-level
        // simulation (it is the matrix whose reuse pattern matters).
        let (b_base, _o, key) = k.vm_map_hipec(task, cfg.matrix_bytes(), policy, cfg.pool_pages)?;
        Ok(Mm {
            k,
            task,
            b_base,
            key,
            cfg: cfg.clone(),
        })
    }

    /// Touches the B page holding element (row, col), charging the
    /// per-element multiply-accumulate for `batch` elements.
    fn touch_b(&mut self, row: u64, col: u64, batch: u64) -> Result<(), HipecError> {
        let elem = row * self.cfg.n + col;
        let page = elem / self.cfg.elems_per_page();
        self.k
            .access_sync(self.task, VAddr(self.b_base.0 + page * PAGE_SIZE), false)?;
        let fma = self.k.vm.cost.tuple_op / 4;
        self.k.charge(fma.saturating_mul(batch));
        self.k.vm.pump();
        Ok(())
    }
}

/// Naive `ijk` multiply: for each output row, sweep all of B column-major.
///
/// B's access pattern per output row is a full cyclic scan page by page —
/// row-major storage means walking a column touches every page-row of B.
pub fn run_naive(cfg: &MatrixConfig, policy: PolicyProgram) -> Result<MatrixResult, HipecError> {
    let mut mm = Mm::new(cfg, policy)?;
    let n = cfg.n;
    let epp = cfg.elems_per_page();
    let snap = mm.k.kernel_stats();
    let start = mm.k.vm.now();
    for _i in 0..n {
        // One output row: every page of B is needed once (k-major page
        // walk; each page contributes `epp` multiply-accumulates).
        for brow in 0..n {
            for bcol_page in 0..n.div_ceil(epp) {
                mm.touch_b(brow, bcol_page * epp, epp.min(n - bcol_page * epp))?;
            }
        }
    }
    Ok(MatrixResult {
        b_faults: mm.k.container(mm.key)?.stats.faults,
        elapsed: mm.k.vm.now().since(start),
        stats: mm.k.kernel_stats().diff(&snap),
    })
}

/// Blocked multiply: tiles of `tile × tile` elements; each B tile is loaded
/// once per (i-tile, k-tile) pair and reused across the tile's rows.
pub fn run_blocked(cfg: &MatrixConfig, policy: PolicyProgram) -> Result<MatrixResult, HipecError> {
    let mut mm = Mm::new(cfg, policy)?;
    let n = cfg.n;
    let t = cfg.tile;
    let epp = cfg.elems_per_page();
    let tiles = n.div_ceil(t);
    let snap = mm.k.kernel_stats();
    let start = mm.k.vm.now();
    for _it in 0..tiles {
        for kt in 0..tiles {
            for jt in 0..tiles {
                // Touch the pages of B tile (kt, jt) once; charge the
                // t³-ish compute the tile performs.
                for row in (kt * t)..((kt + 1) * t).min(n) {
                    for col_page in ((jt * t) / epp)..=(((jt + 1) * t - 1).min(n - 1) / epp) {
                        mm.touch_b(row, col_page * epp, t.min(epp))?;
                    }
                }
            }
        }
    }
    Ok(MatrixResult {
        b_faults: mm.k.container(mm.key)?.stats.faults,
        elapsed: mm.k.vm.now().since(start),
        stats: mm.k.kernel_stats().diff(&snap),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipec_policies::PolicyKind;

    fn tiny() -> MatrixConfig {
        let mut cfg = MatrixConfig::small();
        cfg.n = 256; // 512 KB per matrix, 128 pages
        cfg.tile = 128;
        cfg.pool_pages = 64; // B does not fit
        cfg
    }

    #[test]
    fn naive_thrashes_lru_but_not_mru() {
        let cfg = tiny();
        let lru = run_naive(&cfg, PolicyKind::Lru.program()).expect("lru");
        let mru = run_naive(&cfg, PolicyKind::Mru.program()).expect("mru");
        // Naive B access is a cyclic scan per output row: LRU faults on
        // every page every row.
        let b_pages = hipec_vm::bytes_to_pages(cfg.matrix_bytes());
        assert_eq!(lru.b_faults, b_pages * cfg.n, "PF_l: every page, every row");
        // MRU tracks the §5.3 closed form with Loop = n output rows. (Two
        // B-rows share a page here, so consecutive touches make the exact
        // count land within half a sweep of the formula.)
        let expected_mru = (b_pages - cfg.pool_pages) * (cfg.n - 1) + b_pages;
        assert!(
            mru.b_faults >= expected_mru && mru.b_faults <= expected_mru + cfg.n,
            "MRU {} vs PF_m {expected_mru}",
            mru.b_faults
        );
        assert!(mru.b_faults < lru.b_faults);
        assert!(mru.elapsed < lru.elapsed);
    }

    #[test]
    fn blocking_beats_policy_choice() {
        // A well-blocked program barely faults under *any* policy — the
        // application-knowledge point from the other direction.
        let cfg = tiny();
        let naive_mru = run_naive(&cfg, PolicyKind::Mru.program()).expect("naive mru");
        let blocked_lru = run_blocked(&cfg, PolicyKind::Lru.program()).expect("blocked lru");
        assert!(
            blocked_lru.b_faults < naive_mru.b_faults,
            "blocked LRU {} vs naive MRU {}",
            blocked_lru.b_faults,
            naive_mru.b_faults
        );
    }

    #[test]
    fn blocked_tiles_that_fit_take_mostly_compulsory_faults() {
        let mut cfg = tiny();
        cfg.tile = 64; // tile rows: 64 × 256 elements = 32 pages < pool
        let r = run_blocked(&cfg, PolicyKind::Lru.program()).expect("blocked");
        let b_pages = hipec_vm::bytes_to_pages(cfg.matrix_bytes());
        let tiles = cfg.n / cfg.tile;
        // Each of the `tiles` i-tile passes re-reads B once at worst.
        assert!(
            r.b_faults <= b_pages * tiles,
            "{} faults vs bound {}",
            r.b_faults,
            b_pages * tiles
        );
    }
}

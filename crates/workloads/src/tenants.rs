//! Multi-tenant consolidation workload: a Zipf tenant population with
//! bursty arrivals, mixed policies, weighted share classes and an
//! optional all-torn storm device.
//!
//! Tenants arrive in waves and install under per-tenant admission control
//! ([`hipec_core::AdmissionControl`]): each tenant is one HiPEC container
//! in a [`ShareClass`] chosen by a fixed index rule, running one of the
//! shipped policies (also by index, so the population is policy-mixed).
//! Free-class tenants land on a separate backing device wearing a storm
//! fault plan: torn write-backs (the breaker trips and the retry backlog
//! becomes exactly the head-of-line pressure the weighted pump scheduler
//! has to keep away from the healthy device) plus injected completion
//! delays, which is what actually stretches the storm class's own fault
//! tail.
//!
//! Traffic is Zipf over the tenant population (a few loud tenants, a long
//! quiet tail), and each operation touches a rotating page of the chosen
//! tenant's region. The seeded [`trace`] and [`arrival_wave`] functions
//! are the source of truth: same config ⇒ bit-identical run, which the
//! `tenants_soak` binary double-runs and `cmp`s.

use hipec_core::{
    AdmissionControl, ContainerKey, HipecError, HipecKernel, KernelStats, ShareClass,
};
use hipec_disk::{DeviceParams, FaultConfig};
use hipec_policies::PolicyKind;
use hipec_sim::{DetRng, SimDuration, ZipfTable};
use hipec_vm::{DeviceId, KernelParams, TaskId, VAddr, PAGE_SIZE};

/// Shape of the multi-tenant workload.
#[derive(Debug, Clone)]
pub struct TenantsConfig {
    /// Tenant population size (one container each, admission permitting).
    pub tenants: u64,
    /// Total operations across the population.
    pub ops: u64,
    /// Zipf exponent over the tenant population.
    pub s: f64,
    /// Region pages per tenant.
    pub pages_per_tenant: u64,
    /// `minFrame` reservation per tenant container.
    pub pool: u64,
    /// Fraction of operations that write, in permille.
    pub write_permille: u64,
    /// Admission arrival budget per weight unit per checker interval.
    pub burst_base: u32,
    /// Torn-write probability (permille) on the Free-class device;
    /// 1000 = the all-torn storm.
    pub storm_torn_permille: u16,
    /// Probability (permille) that a storm-device I/O is delayed.
    pub storm_delay_permille: u16,
    /// Upper bound of the injected storm-device delay.
    pub storm_max_delay: SimDuration,
    /// Operations per install round (arrival waves retry between slabs).
    pub slab: u64,
    /// RNG seed for the request stream and the fault plan.
    pub seed: u64,
    /// Machine parameters.
    pub params: KernelParams,
}

impl TenantsConfig {
    /// A consolidation cell: 24 tenants over two devices, all-torn storm
    /// on the Free tier, arrival bursts that trip the throttle.
    pub fn small() -> Self {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 512;
        params.wired_frames = 16;
        params.free_target = 24;
        params.free_min = 8;
        params.inactive_target = 32;
        TenantsConfig {
            tenants: 24,
            ops: 12_000,
            s: 1.1,
            pages_per_tenant: 16,
            pool: 6,
            write_permille: 350,
            burst_base: 2,
            storm_torn_permille: 1000,
            storm_delay_permille: 400,
            storm_max_delay: SimDuration::from_ms(40),
            slab: 1_000,
            seed: 0x7E4A17,
            params,
        }
    }
}

/// The share class of tenant `i`: the population splits evenly into the
/// three tiers, so the weight-1 Free class is the one whose demand
/// overruns its slice of the pool.
pub fn class_of(tenant: u64) -> ShareClass {
    match tenant % 3 {
        0 => ShareClass::Premium,
        1 => ShareClass::Standard,
        _ => ShareClass::Free,
    }
}

/// The policy tenant `i` installs: cycled over the classic replacement
/// set so the population is policy-mixed.
pub fn policy_of(tenant: u64) -> PolicyKind {
    const MIX: [PolicyKind; 4] = [
        PolicyKind::Lru,
        PolicyKind::Clock,
        PolicyKind::Fifo,
        PolicyKind::TwoQueue,
    ];
    MIX[(tenant / 3) as usize % MIX.len()]
}

/// The install round in which tenant `i` first arrives: even tenants at
/// boot, odd tenants as a second mid-run wave — two bursts, each larger
/// than any class's per-window budget.
pub fn arrival_wave(tenant: u64) -> u64 {
    tenant % 2
}

/// One operation of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantOp {
    /// Which tenant the request hits.
    pub tenant: u64,
    /// Page within the tenant's region.
    pub page: u64,
    /// Write access?
    pub write: bool,
}

/// Generates the operation trace: Zipf tenant choice (scattered by a
/// fixed odd multiplier so popularity is uncorrelated with class), a
/// rotating page within the tenant, and the configured write mix. Same
/// config (seed included) ⇒ bit-identical trace.
pub fn trace(cfg: &TenantsConfig) -> Vec<TenantOp> {
    let mut rng = DetRng::new(cfg.seed);
    let table = ZipfTable::new(cfg.tenants as usize, cfg.s);
    let write_p = cfg.write_permille as f64 / 1_000.0;
    (0..cfg.ops)
        .map(|_| {
            let rank = table.sample(&mut rng) as u64;
            let tenant = rank.wrapping_mul(2_654_435_761) % cfg.tenants;
            let page = rng.below(cfg.pages_per_tenant);
            let write = rng.chance(write_p);
            TenantOp {
                tenant,
                page,
                write,
            }
        })
        .collect()
}

/// Per-class outcome of a run.
#[derive(Debug, Clone)]
pub struct ClassSummary {
    /// The share class.
    pub class: ShareClass,
    /// Tenants assigned to the class by [`class_of`].
    pub tenants: u64,
    /// Tenants whose install was eventually admitted.
    pub installed: u64,
    /// Faults served by the class's containers.
    pub faults: u64,
    /// Median fault service latency.
    pub p50_fault: SimDuration,
    /// 99th-percentile fault service latency.
    pub p99_fault: SimDuration,
}

/// Result of one multi-tenant run.
#[derive(Debug, Clone)]
pub struct TenantsResult {
    /// Operations issued (including ones against never-admitted tenants,
    /// which are skipped).
    pub accesses: u64,
    /// Accesses that returned an error (storm-device casualties).
    pub errors: u64,
    /// Containers installed.
    pub installs: u64,
    /// Installs rejected by the bursty-arrival throttle (then retried).
    pub throttled: u64,
    /// Installs rejected by the weighted share cap (dropped).
    pub over_share: u64,
    /// One row per share class, in [`ShareClass::ALL`] order.
    pub classes: Vec<ClassSummary>,
    /// Elapsed virtual time.
    pub elapsed: SimDuration,
    /// Kernel counter activity during the run.
    pub stats: KernelStats,
}

struct Tenant {
    base: VAddr,
    key: ContainerKey,
}

fn try_install(
    k: &mut HipecKernel,
    cfg: &TenantsConfig,
    storm_dev: DeviceId,
    task: TaskId,
    tenant: u64,
) -> Result<Tenant, HipecError> {
    let class = class_of(tenant);
    let device = if class == ShareClass::Free {
        storm_dev
    } else {
        DeviceId(0)
    };
    let bytes = cfg.pages_per_tenant * PAGE_SIZE;
    let (base, _obj, key) = k.vm_map_hipec_as(
        class,
        device,
        task,
        bytes,
        policy_of(tenant).program(),
        cfg.pool,
    )?;
    Ok(Tenant { base, key })
}

/// Runs the workload against a fresh kernel: arrival waves under
/// admission control, the Zipf trace over whoever is installed, and the
/// per-class latency aggregation from the kernel's own books.
pub fn run(cfg: &TenantsConfig) -> Result<TenantsResult, HipecError> {
    let ops = trace(cfg);
    let mut k = HipecKernel::new(cfg.params.clone());
    k.admission = AdmissionControl::enabled_with(cfg.burst_base);
    let storm_dev = k.add_device(DeviceParams::default());
    if cfg.storm_torn_permille > 0 || cfg.storm_delay_permille > 0 {
        k.vm.set_fault_plan_on(
            storm_dev,
            FaultConfig {
                seed: cfg.seed ^ 0x5707,
                read_error_permille: 0,
                write_error_permille: 0,
                delay_permille: cfg.storm_delay_permille,
                max_delay: cfg.storm_max_delay,
                torn_permille: cfg.storm_torn_permille,
            },
        );
    }
    let task = k.vm.create_task();

    let mut installed: Vec<Option<Tenant>> = (0..cfg.tenants).map(|_| None).collect();
    // Tenants still waiting to install: wave-0 arrivals first, the
    // second wave joins once the run crosses its midpoint.
    let mut pending: Vec<u64> = (0..cfg.tenants).filter(|&t| arrival_wave(t) == 0).collect();
    let mut second_wave: Vec<u64> = (0..cfg.tenants).filter(|&t| arrival_wave(t) == 1).collect();
    let mut installs = 0u64;
    let mut dropped = 0u64;
    let mut errors = 0u64;

    let start = k.vm.now();
    let snap = k.kernel_stats();
    let per_op = k.vm.cost.tuple_op * 4;
    let slab = cfg.slab.max(1) as usize;
    for (i, chunk) in ops.chunks(slab).enumerate() {
        if i as u64 * cfg.slab >= cfg.ops / 2 && !second_wave.is_empty() {
            pending.append(&mut second_wave);
        }
        // One admission attempt per pending tenant per round; throttled
        // installs stay queued for the next round (the checker interval
        // rolls the window while the slab runs), share-capped installs
        // are dropped for good.
        let mut still_pending = Vec::new();
        for t in pending.drain(..) {
            match try_install(&mut k, cfg, storm_dev, task, t) {
                Ok(tenant) => {
                    installed[t as usize] = Some(tenant);
                    installs += 1;
                }
                Err(HipecError::AdmissionRejected { throttled, .. }) => {
                    if throttled {
                        still_pending.push(t);
                    } else {
                        dropped += 1;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        pending = still_pending;
        for op in chunk {
            let Some(tenant) = &installed[op.tenant as usize] else {
                continue;
            };
            let addr = VAddr(tenant.base.0 + op.page * PAGE_SIZE);
            if k.access_sync(task, addr, op.write).is_err() {
                errors += 1;
            }
            k.charge(per_op);
            k.pump();
        }
    }
    let _ = dropped;

    let classes = ShareClass::ALL
        .iter()
        .map(|&class| {
            let faults: u64 = installed
                .iter()
                .enumerate()
                .filter(|(t, slot)| class_of(*t as u64) == class && slot.is_some())
                .filter_map(|(_, slot)| slot.as_ref())
                .filter_map(|tenant| k.container(tenant.key).ok())
                .map(|c| c.stats.faults)
                .sum();
            let hist = &k.obs.class_fault[class.index()];
            ClassSummary {
                class,
                tenants: (0..cfg.tenants).filter(|&t| class_of(t) == class).count() as u64,
                installed: installed
                    .iter()
                    .enumerate()
                    .filter(|(t, slot)| class_of(*t as u64) == class && slot.is_some())
                    .count() as u64,
                faults,
                p50_fault: hist.quantile(0.50),
                p99_fault: hist.quantile(0.99),
            }
        })
        .collect();

    Ok(TenantsResult {
        accesses: ops.len() as u64,
        errors,
        installs,
        throttled: k.admission.throttled.iter().sum(),
        over_share: k.admission.over_share.iter().sum(),
        classes,
        elapsed: k.vm.now().since(start),
        stats: k.kernel_stats().diff(&snap),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_seeded_and_population_is_mixed() {
        let cfg = TenantsConfig::small();
        assert_eq!(trace(&cfg), trace(&cfg));
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert_ne!(trace(&cfg), trace(&other), "seed must matter");
        // The index rules cover every class and more than one policy.
        let classes: std::collections::BTreeSet<_> = (0..cfg.tenants).map(class_of).collect();
        assert_eq!(classes.len(), ShareClass::ALL.len());
        let policies: std::collections::BTreeSet<_> =
            (0..cfg.tenants).map(|t| policy_of(t).name()).collect();
        assert!(policies.len() >= 3, "policy mix too narrow: {policies:?}");
    }

    #[test]
    fn arrival_bursts_trip_the_throttle_and_retry() {
        let cfg = TenantsConfig::small();
        let r = run(&cfg).expect("run");
        assert!(r.throttled > 0, "waves never tripped the arrival throttle");
        // Throttled installs are retryable: every non-Free tenant must
        // eventually be admitted (Free may hit its share cap).
        for class in [ShareClass::Standard, ShareClass::Premium] {
            let row = &r.classes[class.index()];
            assert_eq!(
                row.installed,
                row.tenants,
                "{} tenants left uninstalled",
                class.name()
            );
        }
        assert!(r.installs >= 20, "only {} installs landed", r.installs);
    }

    #[test]
    fn storm_degrades_free_but_not_premium() {
        let r = run(&TenantsConfig::small()).expect("run");
        let free = &r.classes[ShareClass::Free.index()];
        let premium = &r.classes[ShareClass::Premium.index()];
        assert!(free.faults > 0 && premium.faults > 0);
        // The storm lives on the Free tier's device; the healthy device's
        // premium tenants must not inherit its tail.
        assert!(
            free.p99_fault > premium.p99_fault,
            "storm did not degrade the free class (free p99 {} vs premium p99 {})",
            free.p99_fault,
            premium.p99_fault
        );
    }

    #[test]
    fn runs_replay_bit_identically() {
        let cfg = TenantsConfig::small();
        let a = run(&cfg).expect("run");
        let b = run(&cfg).expect("run");
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.installs, b.installs);
        assert_eq!(a.throttled, b.throttled);
        assert_eq!(a.elapsed, b.elapsed);
        for (x, y) in a.classes.iter().zip(&b.classes) {
            assert_eq!(x.faults, y.faults);
            assert_eq!(x.p99_fault, y.p99_fault);
        }
    }
}

//! The policy tournament: every shipped policy × every workload shape ×
//! both executor backends × clean/chaos fault plans, with uniform per-cell
//! metrics.
//!
//! The existing workload harnesses (`db`, `matrix`, `join`, …) each build
//! their own kernel and report their own result shape, which is right for
//! reproducing individual paper figures but useless for a cross-policy
//! matrix. The tournament therefore replays *traces* — each workload shape
//! is reduced to a deterministic `(page, is_write)` sequence — through one
//! uniform cell driver: fresh kernel, chosen [`ExecBackend`], optional
//! injected-fault plan, one HiPEC-managed region, periodic whole-kernel
//! invariant audits, and a fixed metric row per cell ([`Cell`]).
//!
//! Everything is seeded: the same [`TournamentConfig`] produces the same
//! traces, the same injected faults, and therefore the same matrix,
//! bit-for-bit — which is what lets `tests/tournament.rs` pin the matrix
//! as a golden and assert Interpreter/Native parity cell by cell.

use hipec_core::{ExecBackend, HipecKernel, LatencyMetric, PolicyProgram};
use hipec_disk::FaultConfig;
use hipec_policies::PolicyKind;
use hipec_sim::{DetRng, SimDuration};
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

use crate::{web_cache, zipf_kv};

/// Injected-fault regime for one tournament cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// No injected device faults.
    Clean,
    /// A fixed, seeded mix of read/write errors, delays and torn writes.
    Chaos,
}

impl Plan {
    /// Stable name used in cell rows and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Plan::Clean => "clean",
            Plan::Chaos => "chaos",
        }
    }

    /// The fault plan to install for this regime, if any. The seed is
    /// derived per workload (not per backend), so Interpreter and Native
    /// cells face the identical injected-fault dice.
    fn fault_config(self, seed: u64) -> Option<FaultConfig> {
        match self {
            Plan::Clean => None,
            Plan::Chaos => Some(FaultConfig {
                seed,
                read_error_permille: 25,
                write_error_permille: 25,
                delay_permille: 80,
                max_delay: SimDuration::from_us(300),
                torn_permille: 40,
            }),
        }
    }
}

/// One workload shape, reduced to a deterministic reference trace.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Stable name used in cell rows and JSON.
    pub name: &'static str,
    /// Region size in pages.
    pub region_pages: u64,
    /// Private frame pool for the region (the cache size under test).
    pub pool: u64,
    /// The `(page, is_write)` reference sequence.
    pub trace: Vec<(u64, bool)>,
}

/// Tournament shape: which policies are implicit (always [`PolicyKind::ALL`]);
/// this picks the scale, the backends, and the fault regimes.
#[derive(Debug, Clone)]
pub struct TournamentConfig {
    /// Master seed; every trace and fault plan derives from it.
    pub seed: u64,
    /// Approximate references per workload trace.
    pub ops: u64,
    /// Executor backends to run every cell on.
    pub backends: Vec<ExecBackend>,
    /// Fault regimes to run every cell under.
    pub plans: Vec<Plan>,
    /// Whole-kernel invariant audit cadence (accesses between audits).
    pub check_every: u64,
}

impl TournamentConfig {
    /// The short matrix the golden regression test pins: small traces,
    /// both backends, both fault regimes.
    pub fn short() -> Self {
        TournamentConfig {
            seed: 0x70F0,
            ops: 700,
            backends: vec![ExecBackend::Interpreter, ExecBackend::Native],
            plans: vec![Plan::Clean, Plan::Chaos],
            check_every: 64,
        }
    }

    /// The full matrix the bench binary reports.
    pub fn full() -> Self {
        TournamentConfig {
            seed: 0x70F0,
            ops: 4_000,
            backends: vec![ExecBackend::Interpreter, ExecBackend::Native],
            plans: vec![Plan::Clean, Plan::Chaos],
            check_every: 256,
        }
    }
}

/// Per-workload seed: mixes the workload's index so shapes are decorrelated
/// but stay stable when the list grows at the end.
fn workload_seed(master: u64, index: u64) -> u64 {
    master ^ (index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// B-tree probes interleaved with a cycling table scan (the `db` shape):
/// page 0 is the root, 1–3 inner nodes, 4–23 leaves, 24–95 the heap table.
fn db_shape(ops: u64, seed: u64) -> Workload {
    let mut rng = DetRng::new(seed);
    let (region, table_base) = (96u64, 24u64);
    let mut trace = Vec::with_capacity(ops as usize + 4);
    let mut table = table_base;
    while (trace.len() as u64) < ops {
        trace.push((table, rng.chance(0.05)));
        table += 1;
        if table == region {
            table = table_base;
        }
        trace.push((0, false));
        trace.push((1 + rng.below(3), false));
        trace.push((4 + rng.below(20), rng.chance(0.10)));
    }
    Workload {
        name: "db",
        region_pages: region,
        pool: 32,
        trace,
    }
}

/// Out-of-core matrix multiply (the `scientific` shape): row pages of A
/// (0–11), a streamed B (12–47), and an accumulated C row (48–59).
fn scientific_shape(ops: u64) -> Workload {
    let mut trace = Vec::with_capacity(ops as usize + 40);
    let mut row = 0u64;
    'outer: loop {
        trace.push((row, false));
        for b in 12..48u64 {
            trace.push((b, false));
            if (b - 12) % 3 == 0 {
                trace.push((48 + row, true));
            }
            if (trace.len() as u64) >= ops {
                break 'outer;
            }
        }
        row = (row + 1) % 12;
    }
    // Pool of 30 against a 36-page B stream: the loop *almost* fits, the
    // regime where retention strategy (MRU-like vs LRU-like) actually
    // discriminates instead of everyone thrashing identically.
    Workload {
        name: "scientific",
        region_pages: 60,
        pool: 30,
        trace,
    }
}

/// A re-referenced hot set polluted by long sequential sweeps (the `scan`
/// shape): 8 hot pages, then cold pages from a rotating cursor. The first
/// rounds sweep gently (8 pages) so the hot set gets re-referenced while
/// still resident — scan-resistant policies promote it then and survive
/// the later 40-page sweeps; recency-only policies lose it every round.
fn scan_shape(ops: u64, seed: u64) -> Workload {
    let mut rng = DetRng::new(seed);
    let region = 256u64;
    let mut trace = Vec::with_capacity(ops as usize + 48);
    let mut cursor = 0u64;
    let mut round = 0u64;
    while (trace.len() as u64) < ops {
        for hot in 0..8u64 {
            trace.push((hot, rng.chance(0.25)));
        }
        let sweep = if round < 4 { 8 } else { 40 };
        for i in 0..sweep {
            trace.push((8 + (cursor + i) % (region - 8), false));
        }
        cursor = (cursor + sweep) % (region - 8);
        round += 1;
    }
    Workload {
        name: "scan",
        region_pages: region,
        pool: 24,
        trace,
    }
}

/// Nested-loops join (the `join` shape): a cycling outer table (0–63), a
/// small inner table (64–67) touched between outer tuples, and an output
/// page written every fourth tuple.
fn join_shape(ops: u64) -> Workload {
    let mut trace = Vec::with_capacity(ops as usize + 8);
    let mut outer = 0u64;
    while (trace.len() as u64) < ops {
        trace.push((outer % 64, false));
        for inner in 64..68u64 {
            trace.push((inner, false));
        }
        if outer.is_multiple_of(4) {
            trace.push((68 + (outer / 4) % 4, true));
        }
        outer += 1;
    }
    Workload {
        name: "join",
        region_pages: 72,
        pool: 20,
        trace,
    }
}

/// Zipf key-value shape, via [`zipf_kv::trace`].
fn zipf_kv_shape(ops: u64, seed: u64) -> Workload {
    let mut cfg = zipf_kv::ZipfKvConfig::small();
    cfg.keys = 192;
    cfg.ops = ops;
    cfg.pool = 48;
    cfg.seed = seed;
    Workload {
        name: "zipf-kv",
        region_pages: cfg.keys,
        pool: cfg.pool,
        trace: zipf_kv::trace(&cfg),
    }
}

/// Scan-resistant web-cache shape, via [`web_cache::trace`].
fn web_cache_shape(ops: u64, seed: u64) -> Workload {
    let mut cfg = web_cache::WebCacheConfig::small();
    cfg.pages = 320;
    // trace length = requests + (requests / crawl_every) * crawl_span; with
    // a 60-page sweep every 150 requests that is requests * 1.4.
    cfg.requests = (ops * 5) / 7;
    cfg.crawl_every = 150;
    cfg.crawl_span = 60;
    cfg.pool = 40;
    cfg.seed = seed;
    Workload {
        name: "web-cache",
        region_pages: cfg.pages,
        pool: cfg.pool,
        trace: web_cache::trace(&cfg),
    }
}

/// The six workload shapes at the configured scale, in matrix order.
pub fn workloads(cfg: &TournamentConfig) -> Vec<Workload> {
    vec![
        db_shape(cfg.ops, workload_seed(cfg.seed, 0)),
        scientific_shape(cfg.ops),
        scan_shape(cfg.ops, workload_seed(cfg.seed, 2)),
        join_shape(cfg.ops),
        zipf_kv_shape(cfg.ops, workload_seed(cfg.seed, 4)),
        web_cache_shape(cfg.ops, workload_seed(cfg.seed, 5)),
    ]
}

/// One (policy × workload × backend × plan) measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Policy name ([`PolicyKind::name`]).
    pub policy: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Executor backend name.
    pub backend: &'static str,
    /// Fault regime name.
    pub plan: &'static str,
    /// References issued (the trace length).
    pub accesses: u64,
    /// References that completed without a surfaced error.
    pub ok: u64,
    /// Policy-resolved page faults in the region's container.
    pub faults: u64,
    /// Successful references served without a fault.
    pub hits: u64,
    /// `hits * 1000 / accesses`.
    pub hit_permille: u64,
    /// Median fault-handling latency (virtual ns).
    pub p50_fault_ns: u64,
    /// Tail fault-handling latency (virtual ns).
    pub p99_fault_ns: u64,
    /// Tail top-level policy-event duration in the region's container
    /// (virtual ns, interval histogram; 0 when metrics are compiled out).
    pub p99_event_ns: u64,
    /// Tail flush completion latency on the boot paging device (virtual
    /// ns, interval histogram; 0 when metrics are compiled out).
    pub p99_flush_ns: u64,
    /// Policy commands executed.
    pub commands: u64,
    /// Policy event invocations.
    pub events: u64,
    /// `Flush` exchanges performed.
    pub flushes: u64,
    /// Frames released back to the kernel.
    pub released: u64,
    /// Device faults surfaced to the container.
    pub device_faults: u64,
    /// Times the container entered quarantine.
    pub quarantines: u64,
    /// Elapsed virtual time (ns).
    pub elapsed_ns: u64,
}

/// Runs one tournament cell: fresh kernel, chosen backend, optional fault
/// plan, the workload's trace replayed against one policy-managed region,
/// with the whole-kernel invariant audit every `check_every` references.
pub fn run_cell(
    kind: PolicyKind,
    workload: &Workload,
    backend: ExecBackend,
    plan: Plan,
    plan_seed: u64,
    check_every: u64,
) -> Result<Cell, String> {
    run_cell_with(
        kind.name(),
        kind.program(),
        workload,
        backend,
        plan,
        plan_seed,
        check_every,
    )
}

/// [`run_cell`] for an arbitrary compiled program (used by tests that pit
/// hand-assembled listings against the translator's output).
pub fn run_cell_with(
    policy_name: &'static str,
    program: PolicyProgram,
    workload: &Workload,
    backend: ExecBackend,
    plan: Plan,
    plan_seed: u64,
    check_every: u64,
) -> Result<Cell, String> {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 2_048;
    params.wired_frames = 64;
    let mut k = HipecKernel::new(params);
    k.set_backend(backend);
    if let Some(fc) = plan.fault_config(plan_seed) {
        k.vm.set_fault_plan(fc);
    }
    let task = k.vm.create_task();
    let (base, _obj, key) = k
        .vm_map_hipec(
            task,
            workload.region_pages * PAGE_SIZE,
            program,
            workload.pool,
        )
        .map_err(|e| format!("{policy_name}/{}: install failed: {e:?}", workload.name))?;
    let per_ref = k.vm.cost.tuple_op * 4;
    let snap = k.kernel_stats();
    let start = k.vm.now();
    let mut ok = 0u64;
    for (i, &(page, write)) in workload.trace.iter().enumerate() {
        // Under chaos an access may surface a typed device error; the cell
        // records how many completed, and the audit below still must pass.
        if k.access_sync(task, VAddr(base.0 + page * PAGE_SIZE), write)
            .is_ok()
        {
            ok += 1;
        }
        k.charge(per_ref);
        k.vm.pump();
        if (i as u64 + 1).is_multiple_of(check_every) {
            k.check_invariants().map_err(|e| {
                format!(
                    "{policy_name}/{}/{}/{}: invariant audit failed mid-run: {e}",
                    workload.name,
                    backend.name(),
                    plan.name()
                )
            })?;
        }
    }
    k.check_invariants().map_err(|e| {
        format!(
            "{policy_name}/{}/{}/{}: final invariant audit failed: {e}",
            workload.name,
            backend.name(),
            plan.name()
        )
    })?;
    let stats = k.kernel_stats().diff(&snap);
    let row = stats.container(key.0).copied().unwrap_or_default();
    let accesses = workload.trace.len() as u64;
    let hits = ok.saturating_sub(row.faults);
    Ok(Cell {
        policy: policy_name,
        workload: workload.name,
        backend: backend.name(),
        plan: plan.name(),
        accesses,
        ok,
        faults: row.faults,
        hits,
        hit_permille: hits * 1_000 / accesses.max(1),
        p50_fault_ns: k.vm.fault_latency.quantile(0.5).as_ns(),
        p99_fault_ns: k.vm.fault_latency.quantile(0.99).as_ns(),
        p99_event_ns: stats
            .latency_row(LatencyMetric::ContainerEvent, key.0 as u64)
            .map(|r| r.p99().as_ns())
            .unwrap_or(0),
        p99_flush_ns: stats
            .latency_row(LatencyMetric::DeviceFlush, 0)
            .map(|r| r.p99().as_ns())
            .unwrap_or(0),
        commands: row.commands,
        events: row.events,
        flushes: row.flushes,
        released: row.released,
        device_faults: row.device_faults,
        quarantines: row.quarantines,
        elapsed_ns: k.vm.now().since(start).as_ns(),
    })
}

/// A policy's standing in the overall ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankRow {
    /// Policy name.
    pub policy: &'static str,
    /// Borda score: sum of the policy's 0-based position in each
    /// workload's clean-plan fault ordering. Lower is better.
    pub points: u64,
    /// Total clean-plan faults across all workloads (first tie-break).
    pub clean_faults: u64,
}

/// The complete matrix plus the overall ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tournament {
    /// Master seed the matrix derives from.
    pub seed: u64,
    /// References per workload trace.
    pub ops: u64,
    /// Workload names, in matrix order.
    pub workloads: Vec<&'static str>,
    /// Every cell, in (workload, policy, backend, plan) order.
    pub cells: Vec<Cell>,
    /// Overall ranking, best first.
    pub ranking: Vec<RankRow>,
}

/// Ranks policies by Borda points over the clean-plan cells of `backend`.
fn rank(cells: &[Cell], workload_names: &[&'static str], backend: &str) -> Vec<RankRow> {
    let mut rows: Vec<RankRow> = PolicyKind::ALL
        .iter()
        .map(|k| RankRow {
            policy: k.name(),
            points: 0,
            clean_faults: 0,
        })
        .collect();
    for &wl in workload_names {
        let mut column: Vec<(u64, &'static str)> = cells
            .iter()
            .filter(|c| c.workload == wl && c.plan == "clean" && c.backend == backend)
            .map(|c| (c.faults, c.policy))
            .collect();
        column.sort();
        for (pos, &(faults, policy)) in column.iter().enumerate() {
            let row = rows
                .iter_mut()
                .find(|r| r.policy == policy)
                .expect("ranking covers every shipped policy");
            row.points += pos as u64;
            row.clean_faults += faults;
        }
    }
    rows.sort_by_key(|r| (r.points, r.clean_faults, r.policy));
    rows
}

/// Runs the full matrix: every shipped policy × every workload × every
/// configured backend × every configured plan.
pub fn run(cfg: &TournamentConfig) -> Result<Tournament, String> {
    let shapes = workloads(cfg);
    let mut cells = Vec::with_capacity(
        shapes.len() * PolicyKind::ALL.len() * cfg.backends.len() * cfg.plans.len(),
    );
    for (widx, wl) in shapes.iter().enumerate() {
        let plan_seed = workload_seed(cfg.seed, widx as u64) ^ 0xFA_17;
        for kind in PolicyKind::ALL {
            for &backend in &cfg.backends {
                for &plan in &cfg.plans {
                    cells.push(run_cell(
                        kind,
                        wl,
                        backend,
                        plan,
                        plan_seed,
                        cfg.check_every,
                    )?);
                }
            }
        }
    }
    let workload_names: Vec<&'static str> = shapes.iter().map(|w| w.name).collect();
    let first_backend = cfg
        .backends
        .first()
        .map(|b| b.name())
        .unwrap_or("interpreter");
    let ranking = rank(&cells, &workload_names, first_backend);
    Ok(Tournament {
        seed: cfg.seed,
        ops: cfg.ops,
        workloads: workload_names,
        cells,
        ranking,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_sized() {
        let cfg = TournamentConfig::short();
        let a = workloads(&cfg);
        let b = workloads(&cfg);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace, y.trace, "{} trace must be reproducible", x.name);
            assert!(
                x.trace.len() as u64 >= cfg.ops / 2,
                "{} trace too short: {}",
                x.name,
                x.trace.len()
            );
            assert!(
                x.pool < x.region_pages,
                "{} pool must be under memory pressure",
                x.name
            );
            let max_page = x.trace.iter().map(|&(p, _)| p).max().unwrap();
            assert!(max_page < x.region_pages, "{} trace escapes region", x.name);
        }
    }

    #[test]
    fn a_single_cell_is_reproducible() {
        let cfg = TournamentConfig::short();
        let wl = &workloads(&cfg)[0];
        let a = run_cell(
            PolicyKind::Lru,
            wl,
            ExecBackend::Interpreter,
            Plan::Chaos,
            7,
            cfg.check_every,
        )
        .expect("cell");
        let b = run_cell(
            PolicyKind::Lru,
            wl,
            ExecBackend::Interpreter,
            Plan::Chaos,
            7,
            cfg.check_every,
        )
        .expect("cell");
        assert_eq!(a, b, "same cell inputs must give a bit-identical row");
        assert!(a.faults > 0 && a.hits > 0);
    }
}

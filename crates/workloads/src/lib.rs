//! Workloads for the HiPEC evaluation (paper §5).
//!
//! * [`kernel_iface`] — a small trait letting every workload run unchanged
//!   on the plain Mach kernel (`hipec-vm`) and on the HiPEC kernel
//!   (`hipec-core`), which is exactly the comparison the paper draws.
//! * [`scan`] — reference-trace generators (sequential, cyclic, random,
//!   Zipf, strided, hot/cold) and a trace-replay driver.
//! * [`fault_sweep`] — the §5.1 measurement: page-fault handling time over
//!   a 40 MB region, with and without disk I/O (Table 3).
//! * [`join`] — the §5.3 nested-loops join with a pinned 4 KB inner table
//!   (Figure 6).
//! * [`aim`] — an AIM-Suite-III-like multiuser throughput benchmark over a
//!   round-robin one-CPU scheduler (Figure 5).
//! * [`db`] — database access patterns (B-tree probes + table scans) with
//!   per-region policies, the paper's §6 DBMS direction.
//! * [`matrix`] — out-of-core matrix multiply (naive vs blocked), the
//!   introduction's scientific-simulator motivation.
//! * [`zipf_kv`] — a Zipf-distributed key-value store (web/KV skew).
//! * [`tenants`] — a multi-tenant consolidation cell: Zipf tenant
//!   population, bursty arrivals under admission control, mixed policies
//!   and an all-torn storm device isolated by the weighted pump.
//! * [`web_cache`] — a scan-resistant edge cache: Zipf user traffic with
//!   periodic one-shot crawler sweeps.
//! * [`tournament`] — the cross-policy harness: every shipped policy ×
//!   every workload shape × both executor backends × clean/chaos fault
//!   plans, with uniform per-cell metrics.

pub mod aim;
pub mod db;
pub mod fault_sweep;
pub mod join;
pub mod kernel_iface;
pub mod matrix;
pub mod scan;
pub mod tenants;
pub mod tournament;
pub mod web_cache;
pub mod zipf_kv;

pub use kernel_iface::SysKernel;

//! Database workloads over HiPEC regions — the paper's §6 plan ("design a
//! database management system that uses HiPEC") scaled to two classic
//! buffer-management access patterns:
//!
//! * **B-tree index probes** — the root and inner levels are re-touched on
//!   every probe, the leaves are random: a recency policy (LRU) keeps the
//!   hot upper levels resident, MRU destroys them.
//! * **Table scans** — cyclic sweeps: MRU keeps a stable prefix, LRU
//!   thrashes (§5.3).
//!
//! The point of the combined *query mix* is HiPEC's central claim: one
//! application can give **each region its own policy** — LRU for the
//! index, MRU for the table — which no single kernel-wide policy matches.

use hipec_core::{ContainerKey, HipecError, HipecKernel, KernelStats};
use hipec_policies::PolicyKind;
use hipec_sim::{DetRng, SimDuration};
use hipec_vm::{KernelParams, TaskId, VAddr, PAGE_SIZE};

/// Shape of the simulated database.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Pages per B-tree level, root first (e.g. `[1, 8, 64, 512]`).
    pub index_levels: Vec<u64>,
    /// Heap-table size in pages.
    pub table_pages: u64,
    /// Private pool for the index region.
    pub index_pool: u64,
    /// Private pool for the table region.
    pub table_pool: u64,
    /// Number of full table scans in the mix.
    pub scans: u64,
    /// Index probes interleaved per scanned table page.
    pub probes_per_page: u64,
    /// RNG seed for probe targets.
    pub seed: u64,
    /// Machine parameters.
    pub params: KernelParams,
}

impl DbConfig {
    /// A small analytics-style database: 585-page index, 1024-page table.
    pub fn small() -> Self {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 4_096;
        params.wired_frames = 64;
        DbConfig {
            index_levels: vec![1, 8, 64, 512],
            table_pages: 1_024,
            index_pool: 96,
            table_pool: 512,
            scans: 4,
            probes_per_page: 2,
            seed: 0xDB,
            params,
        }
    }

    /// Total index pages.
    pub fn index_pages(&self) -> u64 {
        self.index_levels.iter().sum()
    }
}

/// Result of one query-mix run.
#[derive(Debug, Clone)]
pub struct DbResult {
    /// Faults in the index region.
    pub index_faults: u64,
    /// Faults in the table region.
    pub table_faults: u64,
    /// Elapsed virtual time.
    pub elapsed: SimDuration,
    /// Kernel counter activity during the mix (diff of snapshots taken
    /// after setup and at the end).
    pub stats: KernelStats,
}

struct Db {
    kernel: HipecKernel,
    task: TaskId,
    index_base: VAddr,
    table_base: VAddr,
    index_key: ContainerKey,
    table_key: ContainerKey,
    level_offsets: Vec<u64>,
}

impl Db {
    fn new(
        cfg: &DbConfig,
        index_policy: PolicyKind,
        table_policy: PolicyKind,
    ) -> Result<Self, HipecError> {
        let mut kernel = HipecKernel::new(cfg.params.clone());
        let task = kernel.vm.create_task();
        let (index_base, _o, index_key) = kernel.vm_map_hipec(
            task,
            cfg.index_pages() * PAGE_SIZE,
            index_policy.program(),
            cfg.index_pool,
        )?;
        let (table_base, _o, table_key) = kernel.vm_map_hipec(
            task,
            cfg.table_pages * PAGE_SIZE,
            table_policy.program(),
            cfg.table_pool,
        )?;
        let mut level_offsets = Vec::with_capacity(cfg.index_levels.len());
        let mut off = 0;
        for &pages in &cfg.index_levels {
            level_offsets.push(off);
            off += pages;
        }
        Ok(Db {
            kernel,
            task,
            index_base,
            table_base,
            index_key,
            table_key,
            level_offsets,
        })
    }

    /// One root-to-leaf probe: touch one page per level (root fixed,
    /// deeper levels random).
    fn probe(&mut self, cfg: &DbConfig, rng: &mut DetRng) -> Result<(), HipecError> {
        for (level, &pages) in cfg.index_levels.iter().enumerate() {
            let page = if pages == 1 { 0 } else { rng.below(pages) };
            let addr = VAddr(self.index_base.0 + (self.level_offsets[level] + page) * PAGE_SIZE);
            self.kernel.access_sync(self.task, addr, false)?;
            // Key comparisons within the node.
            let cmp = self.kernel.vm.cost.tuple_op * 6;
            self.kernel.charge(cmp);
        }
        self.kernel.vm.pump();
        Ok(())
    }
}

/// Runs the query mix with separate policies for index and table regions.
pub fn run_query_mix(
    cfg: &DbConfig,
    index_policy: PolicyKind,
    table_policy: PolicyKind,
) -> Result<DbResult, HipecError> {
    let mut db = Db::new(cfg, index_policy, table_policy)?;
    let mut rng = DetRng::new(cfg.seed);
    let snap = db.kernel.kernel_stats();
    let start = db.kernel.vm.now();
    for _scan in 0..cfg.scans {
        for p in 0..cfg.table_pages {
            let addr = VAddr(db.table_base.0 + p * PAGE_SIZE);
            db.kernel.access_sync(db.task, addr, false)?;
            let per_page = db.kernel.vm.cost.tuple_op * 32;
            db.kernel.charge(per_page);
            db.kernel.vm.pump();
            for _ in 0..cfg.probes_per_page {
                db.probe(cfg, &mut rng)?;
            }
        }
    }
    let elapsed = db.kernel.vm.now().since(start);
    Ok(DbResult {
        index_faults: db.kernel.container(db.index_key)?.stats.faults,
        table_faults: db.kernel.container(db.table_key)?.stats.faults,
        elapsed,
        stats: db.kernel.kernel_stats().diff(&snap),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_index_beats_mru_index() {
        let cfg = DbConfig::small();
        let lru = run_query_mix(&cfg, PolicyKind::Lru, PolicyKind::Mru).expect("lru index");
        let mru = run_query_mix(&cfg, PolicyKind::Mru, PolicyKind::Mru).expect("mru index");
        assert!(
            lru.index_faults < mru.index_faults / 2,
            "LRU must keep the hot upper levels: {} vs {}",
            lru.index_faults,
            mru.index_faults
        );
    }

    #[test]
    fn mru_table_beats_lru_table() {
        let cfg = DbConfig::small();
        let mru = run_query_mix(&cfg, PolicyKind::Lru, PolicyKind::Mru).expect("mru table");
        let lru = run_query_mix(&cfg, PolicyKind::Lru, PolicyKind::Lru).expect("lru table");
        // Exactly the paper's closed forms: LRU faults every page of every
        // scan; MRU only the part that does not fit.
        assert_eq!(lru.table_faults, cfg.table_pages * cfg.scans);
        assert_eq!(
            mru.table_faults,
            (cfg.table_pages - cfg.table_pool) * (cfg.scans - 1) + cfg.table_pages
        );
        assert!(mru.table_faults < lru.table_faults);
    }

    #[test]
    fn per_region_policies_beat_any_single_policy() {
        let cfg = DbConfig::small();
        let mixed = run_query_mix(&cfg, PolicyKind::Lru, PolicyKind::Mru).expect("mixed");
        let all_lru = run_query_mix(&cfg, PolicyKind::Lru, PolicyKind::Lru).expect("all lru");
        let all_mru = run_query_mix(&cfg, PolicyKind::Mru, PolicyKind::Mru).expect("all mru");
        let all_fifo = run_query_mix(&cfg, PolicyKind::Fifo, PolicyKind::Fifo).expect("all fifo");
        for (name, single) in [("LRU", all_lru), ("MRU", all_mru), ("FIFO", all_fifo)] {
            assert!(
                mixed.elapsed < single.elapsed,
                "mixed policies must beat uniform {name}: {} vs {}",
                mixed.elapsed,
                single.elapsed
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = DbConfig::small();
        let a = run_query_mix(&cfg, PolicyKind::Lru, PolicyKind::Mru).expect("a");
        let b = run_query_mix(&cfg, PolicyKind::Lru, PolicyKind::Mru).expect("b");
        assert_eq!(a.index_faults, b.index_faults);
        assert_eq!(a.table_faults, b.table_faults);
        assert_eq!(a.elapsed, b.elapsed);
    }
}

//! A common interface over the plain Mach kernel and the HiPEC kernel.
//!
//! The paper's experiments run identical workloads on the unmodified Mach
//! 3.0 kernel and on the HiPEC-modified kernel. [`SysKernel`] is the small
//! surface those workloads need; both kernels implement it.

use hipec_core::{HipecError, HipecKernel};
use hipec_sim::{SimDuration, SimTime};
use hipec_vm::{AccessOutcome, AccessResult, Kernel, ObjectId, TaskId, VAddr, VmError};

/// Workload-facing kernel operations.
pub trait SysKernel {
    /// The kernel's name in reports ("Mach" / "HiPEC").
    fn label(&self) -> &'static str;

    /// Performs one access (without waiting for device completions).
    fn access(&mut self, task: TaskId, addr: VAddr, write: bool) -> Result<AccessResult, String>;

    /// The underlying VM kernel (clock, stats, syscalls).
    fn vm(&mut self) -> &mut Kernel;

    /// Read-only view of the VM kernel.
    fn vm_ref(&self) -> &Kernel;

    /// Housekeeping hook (flush completions, checker wakeups).
    fn pump(&mut self);

    /// Current virtual time.
    fn now(&self) -> SimTime {
        self.vm_ref().clock.now()
    }

    /// Charges CPU time (workload compute).
    fn charge(&mut self, d: SimDuration) {
        self.vm().charge(d);
    }

    /// Access that synchronously waits out any device time it started.
    fn access_wait(
        &mut self,
        task: TaskId,
        addr: VAddr,
        write: bool,
    ) -> Result<AccessResult, String> {
        let r = self.access(task, addr, write)?;
        if let Some(done) = r.io_until {
            self.vm().clock.advance_to(done);
            self.pump();
        }
        Ok(r)
    }
}

impl SysKernel for Kernel {
    fn label(&self) -> &'static str {
        "Mach"
    }

    fn access(&mut self, task: TaskId, addr: VAddr, write: bool) -> Result<AccessResult, String> {
        match Kernel::access(self, task, addr, write).map_err(|e: VmError| e.to_string())? {
            AccessOutcome::Done(r) => Ok(r),
            AccessOutcome::NeedsPolicy(_) => {
                Err("plain kernel cannot resolve HiPEC faults".to_string())
            }
        }
    }

    fn vm(&mut self) -> &mut Kernel {
        self
    }

    fn vm_ref(&self) -> &Kernel {
        self
    }

    fn pump(&mut self) {
        Kernel::pump(self);
    }
}

impl SysKernel for HipecKernel {
    fn label(&self) -> &'static str {
        "HiPEC"
    }

    fn access(&mut self, task: TaskId, addr: VAddr, write: bool) -> Result<AccessResult, String> {
        HipecKernel::access(self, task, addr, write).map_err(|e: HipecError| e.to_string())
    }

    fn vm(&mut self) -> &mut Kernel {
        &mut self.vm
    }

    fn vm_ref(&self) -> &Kernel {
        &self.vm
    }

    fn pump(&mut self) {
        self.vm.pump();
        self.poll_checker();
    }
}

/// Convenience: maps a file-backed region (both kernels).
pub fn map_file(
    k: &mut (impl SysKernel + ?Sized),
    task: TaskId,
    bytes: u64,
) -> Result<(VAddr, ObjectId), String> {
    k.vm().vm_map(task, bytes).map_err(|e| e.to_string())
}

/// Convenience: allocates an anonymous region (both kernels).
pub fn allocate(
    k: &mut (impl SysKernel + ?Sized),
    task: TaskId,
    bytes: u64,
) -> Result<(VAddr, ObjectId), String> {
    k.vm().vm_allocate(task, bytes).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipec_vm::{KernelParams, PAGE_SIZE};

    #[test]
    fn both_kernels_serve_the_same_interface() {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 128;
        params.wired_frames = 8;
        let mut mach = Kernel::new(params.clone());
        let mut hipec = HipecKernel::new(params);
        assert_eq!(SysKernel::label(&mach), "Mach");
        assert_eq!(SysKernel::label(&hipec), "HiPEC");

        for k in [&mut mach as &mut dyn SysKernel, &mut hipec] {
            let task = k.vm().create_task();
            let (addr, _) = allocate(k, task, 4 * PAGE_SIZE).expect("allocate");
            k.access_wait(task, addr, true).expect("fault");
            k.access_wait(task, addr, false).expect("hit");
            assert_eq!(k.vm().stats.get("faults"), 1);
        }
    }

    #[test]
    fn hipec_kernel_charges_the_region_check() {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 128;
        params.wired_frames = 8;
        let mut mach = Kernel::new(params.clone());
        let mut hipec = HipecKernel::new(params);
        let fault_cost = |k: &mut dyn SysKernel| {
            let task = k.vm().create_task();
            let (addr, _) = allocate(k, task, PAGE_SIZE).expect("allocate");
            let before = k.now();
            k.access_wait(task, addr, false).expect("fault");
            k.now().since(before)
        };
        let mach_cost = fault_cost(&mut mach);
        let hipec_cost = fault_cost(&mut hipec);
        assert!(hipec_cost > mach_cost, "the modified kernel pays the check");
    }
}

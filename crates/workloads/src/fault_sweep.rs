//! The §5.1 measurement: page-fault handling time for a 40 MB region
//! (Table 3), with and without disk I/O, on both kernels.

use hipec_core::{HipecKernel, KernelStats, PolicyProgram};
use hipec_sim::SimDuration;
use hipec_vm::{bytes_to_pages, Kernel, KernelParams, VAddr, PAGE_SIZE};

use crate::kernel_iface::SysKernel;

/// One fault-sweep measurement.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Faults taken (one per page).
    pub faults: u64,
    /// Total elapsed virtual time.
    pub elapsed: SimDuration,
    /// Fault-latency distribution (trap to resolution).
    pub latency: hipec_sim::stats::Histogram,
    /// Final kernel counter snapshot (HiPEC runs only; the unmodified
    /// Mach kernel has no container metrics to report).
    pub kernel: Option<KernelStats>,
}

impl SweepResult {
    /// Mean time per fault.
    pub fn per_fault(&self) -> SimDuration {
        self.elapsed / self.faults.max(1)
    }
}

fn sweep(k: &mut impl SysKernel, task: hipec_vm::TaskId, bytes: u64, base: VAddr) -> SweepResult {
    let pages = bytes_to_pages(bytes);
    let start = k.now();
    for p in 0..pages {
        k.access_wait(task, VAddr(base.0 + p * PAGE_SIZE), false)
            .expect("sweep access");
    }
    k.pump();
    let elapsed = k.now().since(start);
    SweepResult {
        faults: pages,
        elapsed,
        latency: k.vm().fault_latency.clone(),
        kernel: None,
    }
}

/// Runs the sweep on the unmodified Mach kernel.
pub fn run_mach(params: KernelParams, bytes: u64, with_io: bool) -> SweepResult {
    let mut k = Kernel::new(params);
    let task = k.create_task();
    let (base, _) = if with_io {
        k.vm_map(task, bytes).expect("map file region")
    } else {
        k.vm_allocate(task, bytes).expect("allocate region")
    };
    sweep(&mut k, task, bytes, base)
}

/// Runs the sweep on the HiPEC kernel under the given policy, with the
/// whole region privately allocated (`minFrame` = region pages), exactly
/// as the paper's experiment requests 40 MB for private management.
pub fn run_hipec(
    params: KernelParams,
    bytes: u64,
    with_io: bool,
    program: PolicyProgram,
) -> SweepResult {
    let mut k = HipecKernel::new(params);
    let task = k.vm.create_task();
    let pages = bytes_to_pages(bytes);
    let (base, _obj, _key) = if with_io {
        k.vm_map_hipec(task, bytes, program, pages).expect("map")
    } else {
        k.vm_allocate_hipec(task, bytes, program, pages)
            .expect("allocate")
    };
    let mut result = sweep(&mut k, task, bytes, base);
    result.kernel = Some(k.kernel_stats());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipec_policies::PolicyKind;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn no_io_sweep_matches_the_calibrated_fault_cost() {
        let params = KernelParams::paper_64mb();
        let r = run_mach(params.clone(), 4 * MB, false);
        assert_eq!(r.faults, 1024);
        let per = r.per_fault();
        // 392 µs per zero-fill fault (+ small queue costs).
        assert!((390.0..420.0).contains(&per.as_us_f64()), "per-fault {per}");
    }

    #[test]
    fn io_sweep_is_dominated_by_the_device() {
        let r = run_mach(KernelParams::paper_64mb(), 4 * MB, true);
        let per_ms = r.per_fault().as_ms_f64();
        assert!(
            (6.0..10.0).contains(&per_ms),
            "per-fault {per_ms:.2} ms should be ≈ 8 ms"
        );
    }

    #[test]
    fn hipec_overhead_is_small_positive_without_io() {
        let bytes = 4 * MB;
        let mach = run_mach(KernelParams::paper_64mb(), bytes, false);
        let hipec = run_hipec(
            KernelParams::paper_64mb(),
            bytes,
            false,
            PolicyKind::FifoSecondChance.program(),
        );
        assert_eq!(mach.faults, hipec.faults);
        let overhead = hipec.elapsed.as_ns() as f64 / mach.elapsed.as_ns() as f64 - 1.0;
        assert!(
            (0.001..0.04).contains(&overhead),
            "no-I/O overhead {:.2}% out of band",
            overhead * 100.0
        );
    }

    #[test]
    fn hipec_overhead_is_negligible_with_io() {
        let bytes = 2 * MB;
        let mach = run_mach(KernelParams::paper_64mb(), bytes, true);
        let hipec = run_hipec(
            KernelParams::paper_64mb(),
            bytes,
            true,
            PolicyKind::FifoSecondChance.program(),
        );
        let overhead = hipec.elapsed.as_ns() as f64 / mach.elapsed.as_ns() as f64 - 1.0;
        assert!(
            overhead.abs() < 0.005,
            "with-I/O overhead {:.3}% should be ≈ 0.02%",
            overhead * 100.0
        );
    }
}

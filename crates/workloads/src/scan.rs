//! Reference-trace generators and a trace-replay driver.

use hipec_sim::rng::ZipfTable;
use hipec_sim::DetRng;
use hipec_vm::{TaskId, VAddr, PAGE_SIZE};

use crate::kernel_iface::SysKernel;

/// Synthetic access patterns over a region of `pages` pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// One pass, page 0 to page n−1.
    Sequential,
    /// `loops` passes over the whole region (the join's outer-table shape).
    Cyclic {
        /// Number of passes.
        loops: u64,
    },
    /// Uniformly random references.
    Random {
        /// Number of references.
        count: u64,
    },
    /// Zipf-skewed references (rank 0 hottest).
    Zipf {
        /// Number of references.
        count: u64,
        /// Skew exponent (1.0 is classic).
        s: f64,
    },
    /// Fixed-stride references.
    Strided {
        /// Number of references.
        count: u64,
        /// Stride in pages.
        stride: u64,
    },
    /// A small hot set interleaved with cold random references.
    HotCold {
        /// Number of (hot, cold) pairs.
        count: u64,
        /// Hot-set size in pages.
        hot: u64,
    },
}

/// Generates the page-index trace for a pattern.
pub fn generate(pattern: Pattern, pages: u64, rng: &mut DetRng) -> Vec<u64> {
    assert!(pages > 0);
    match pattern {
        Pattern::Sequential => (0..pages).collect(),
        Pattern::Cyclic { loops } => (0..loops).flat_map(|_| 0..pages).collect(),
        Pattern::Random { count } => (0..count).map(|_| rng.below(pages)).collect(),
        Pattern::Zipf { count, s } => {
            let table = ZipfTable::new(pages as usize, s);
            (0..count).map(|_| table.sample(rng) as u64).collect()
        }
        Pattern::Strided { count, stride } => (0..count).map(|i| (i * stride) % pages).collect(),
        Pattern::HotCold { count, hot } => (0..count)
            .flat_map(|i| [i % hot.max(1), rng.below(pages)])
            .collect(),
    }
}

/// Outcome of replaying a trace.
#[derive(Debug, Clone, Copy)]
pub struct ReplayResult {
    /// References issued.
    pub accesses: u64,
    /// Faults taken (major + minor).
    pub faults: u64,
    /// Virtual time consumed.
    pub elapsed: hipec_sim::SimDuration,
}

/// Replays a page trace against a mapped region, waiting out device time.
pub fn replay(
    k: &mut impl SysKernel,
    task: TaskId,
    base: VAddr,
    trace: &[u64],
    write: bool,
) -> Result<ReplayResult, String> {
    let start_faults = k.vm().stats.get("faults");
    let start = k.now();
    for &page in trace {
        k.access_wait(task, VAddr(base.0 + page * PAGE_SIZE), write)?;
    }
    k.pump();
    Ok(ReplayResult {
        accesses: trace.len() as u64,
        faults: k.vm().stats.get("faults") - start_faults,
        elapsed: k.now().since(start),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipec_vm::{Kernel, KernelParams};

    #[test]
    fn generators_respect_bounds_and_counts() {
        let mut rng = DetRng::new(9);
        for (pattern, expected_len) in [
            (Pattern::Sequential, 32),
            (Pattern::Cyclic { loops: 3 }, 96),
            (Pattern::Random { count: 50 }, 50),
            (Pattern::Zipf { count: 50, s: 1.0 }, 50),
            (
                Pattern::Strided {
                    count: 40,
                    stride: 7,
                },
                40,
            ),
            (Pattern::HotCold { count: 25, hot: 4 }, 50),
        ] {
            let t = generate(pattern, 32, &mut rng);
            assert_eq!(t.len(), expected_len, "{pattern:?}");
            assert!(t.iter().all(|&p| p < 32), "{pattern:?} out of bounds");
        }
    }

    #[test]
    fn zipf_trace_is_skewed() {
        let mut rng = DetRng::new(10);
        let t = generate(
            Pattern::Zipf {
                count: 5_000,
                s: 1.0,
            },
            64,
            &mut rng,
        );
        let low = t.iter().filter(|&&p| p < 8).count();
        assert!(low > t.len() / 3, "{low} of {} in the hot eighth", t.len());
    }

    #[test]
    fn replay_counts_faults() {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 128;
        params.wired_frames = 8;
        let mut k = Kernel::new(params);
        let task = k.create_task();
        let (base, _) = k.vm_allocate(task, 32 * PAGE_SIZE).expect("allocate");
        let mut rng = DetRng::new(1);
        let trace = generate(Pattern::Cyclic { loops: 2 }, 32, &mut rng);
        let r = replay(&mut k, task, base, &trace, false).expect("replay");
        assert_eq!(r.accesses, 64);
        assert_eq!(r.faults, 32, "fits in memory: one fault per page");
        assert!(r.elapsed.as_ns() > 0);
    }
}

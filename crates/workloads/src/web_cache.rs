//! Scan-resistant web-cache workload.
//!
//! An edge cache in front of a large catalog: user requests follow a Zipf
//! popularity curve (a small hot set carries most of the traffic), but a
//! crawler periodically sweeps a long sequential slice of the catalog —
//! one-shot reads that a recency-only policy lets flush the hot set. This
//! is the classic scan-pollution scenario 2Q/LearnedCache exist for.
//!
//! The seeded [`trace`] generator is the workload's source of truth: the
//! tournament and the determinism tests replay the exact same `(page,
//! write)` sequence.

use hipec_core::{HipecError, HipecKernel, KernelStats, PolicyProgram};
use hipec_sim::{DetRng, SimDuration, ZipfTable};
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

/// Shape of the web-cache workload.
#[derive(Debug, Clone)]
pub struct WebCacheConfig {
    /// Catalog size in pages (objects).
    pub pages: u64,
    /// Number of user requests.
    pub requests: u64,
    /// Zipf exponent of user popularity.
    pub s: f64,
    /// A crawler sweep is injected after every `crawl_every` user requests.
    pub crawl_every: u64,
    /// Sequential pages touched per crawler sweep.
    pub crawl_span: u64,
    /// Fraction of user requests that update the object, in permille.
    pub write_permille: u64,
    /// Private pool for the region.
    pub pool: u64,
    /// RNG seed for the request stream.
    pub seed: u64,
    /// Machine parameters.
    pub params: KernelParams,
}

impl WebCacheConfig {
    /// A small edge cache: 512-page catalog, 48-frame pool, hourly-style
    /// crawler sweeps of 96 pages every 400 requests.
    pub fn small() -> Self {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 2_048;
        params.wired_frames = 64;
        WebCacheConfig {
            pages: 512,
            requests: 12_000,
            s: 1.1,
            crawl_every: 400,
            crawl_span: 96,
            write_permille: 50,
            pool: 48,
            seed: 0x3EB,
            params,
        }
    }
}

/// Generates the `(page, is_write)` request trace: Zipf user requests with
/// periodic sequential crawler sweeps (always reads) spliced in. Same
/// config (seed included) ⇒ bit-identical trace.
pub fn trace(cfg: &WebCacheConfig) -> Vec<(u64, bool)> {
    let mut rng = DetRng::new(cfg.seed);
    let table = ZipfTable::new(cfg.pages as usize, cfg.s);
    let write_p = cfg.write_permille as f64 / 1_000.0;
    let sweeps = cfg.requests / cfg.crawl_every;
    let mut out = Vec::with_capacity((cfg.requests + sweeps * cfg.crawl_span) as usize);
    let mut crawl_cursor = 0u64;
    for req in 0..cfg.requests {
        let page = table.sample(&mut rng) as u64;
        out.push((page, rng.chance(write_p)));
        if (req + 1) % cfg.crawl_every == 0 {
            // One-shot sequential sweep over the next catalog slice.
            for i in 0..cfg.crawl_span {
                out.push(((crawl_cursor + i) % cfg.pages, false));
            }
            crawl_cursor = (crawl_cursor + cfg.crawl_span) % cfg.pages;
        }
    }
    out
}

/// Result of one web-cache run.
#[derive(Debug, Clone)]
pub struct WebCacheResult {
    /// Requests issued (user + crawler).
    pub accesses: u64,
    /// Faults taken by the region's policy container.
    pub faults: u64,
    /// Elapsed virtual time.
    pub elapsed: SimDuration,
    /// Kernel counter activity during the run.
    pub stats: KernelStats,
}

/// Replays the trace against a fresh kernel under `policy`.
pub fn run(cfg: &WebCacheConfig, policy: PolicyProgram) -> Result<WebCacheResult, HipecError> {
    let reqs = trace(cfg);
    let mut k = HipecKernel::new(cfg.params.clone());
    let task = k.vm.create_task();
    let (base, _obj, key) = k.vm_map_hipec(task, cfg.pages * PAGE_SIZE, policy, cfg.pool)?;
    let per_req = k.vm.cost.tuple_op * 8;
    let snap = k.kernel_stats();
    let start = k.vm.now();
    for &(page, write) in &reqs {
        k.access_sync(task, VAddr(base.0 + page * PAGE_SIZE), write)?;
        k.charge(per_req);
        k.vm.pump();
    }
    Ok(WebCacheResult {
        accesses: reqs.len() as u64,
        faults: k.container(key)?.stats.faults,
        elapsed: k.vm.now().since(start),
        stats: k.kernel_stats().diff(&snap),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipec_policies::PolicyKind;

    #[test]
    fn same_seed_gives_bit_identical_traces() {
        let cfg = WebCacheConfig::small();
        assert_eq!(trace(&cfg), trace(&cfg));
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert_ne!(trace(&cfg), trace(&other), "seed must matter");
    }

    #[test]
    fn crawler_sweeps_are_present_and_read_only() {
        let cfg = WebCacheConfig::small();
        let reqs = trace(&cfg);
        let sweeps = cfg.requests / cfg.crawl_every;
        assert_eq!(
            reqs.len() as u64,
            cfg.requests + sweeps * cfg.crawl_span,
            "every sweep fully spliced in"
        );
        // Find the first sweep: crawl_span consecutive sequential reads.
        let start = cfg.crawl_every as usize;
        for i in 0..cfg.crawl_span as usize {
            let (page, write) = reqs[start + i];
            assert_eq!(page, i as u64, "sweep is sequential from the cursor");
            assert!(!write, "crawler never writes");
        }
    }

    #[test]
    fn runs_are_deterministic_and_scans_pollute_lru() {
        let cfg = WebCacheConfig::small();
        let a = run(&cfg, PolicyKind::TwoQueue.program()).expect("run");
        let b = run(&cfg, PolicyKind::TwoQueue.program()).expect("run");
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.elapsed, b.elapsed);
        // The scan-resistant policy must beat LRU here — that asymmetry is
        // the whole point of the workload.
        let lru = run(&cfg, PolicyKind::Lru.program()).expect("run");
        assert!(
            a.faults < lru.faults,
            "2Q ({}) must beat LRU ({}) under crawler pollution",
            a.faults,
            lru.faults
        );
    }
}

//! Zipf-distributed key-value workload.
//!
//! A single-region key-value store: one page per key shard, with request
//! popularity drawn from a Zipf distribution (the canonical web/KV skew).
//! Keys are scattered across the region by a fixed multiplicative
//! permutation so popularity is not correlated with page order — a policy
//! has to actually track recency/frequency, not just keep a prefix.
//!
//! The seeded [`trace`] generator is the workload's source of truth: the
//! tournament and the determinism tests replay the exact same `(page,
//! write)` sequence.

use hipec_core::{HipecError, HipecKernel, KernelStats, PolicyProgram};
use hipec_sim::{DetRng, SimDuration, ZipfTable};
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

/// Shape of the key-value workload.
#[derive(Debug, Clone)]
pub struct ZipfKvConfig {
    /// Key space: one page per key shard.
    pub keys: u64,
    /// Number of get/put operations.
    pub ops: u64,
    /// Zipf exponent (1.0 = classic web skew).
    pub s: f64,
    /// Fraction of operations that are puts, in permille.
    pub write_permille: u64,
    /// Private pool for the region.
    pub pool: u64,
    /// RNG seed for the request stream.
    pub seed: u64,
    /// Machine parameters.
    pub params: KernelParams,
}

impl ZipfKvConfig {
    /// A small skewed store: 256 shards, 64-frame pool, 20k ops.
    pub fn small() -> Self {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 2_048;
        params.wired_frames = 64;
        ZipfKvConfig {
            keys: 256,
            ops: 20_000,
            s: 1.0,
            write_permille: 200,
            pool: 64,
            seed: 0x21F0,
            params,
        }
    }
}

/// The page a popularity rank is stored on: a fixed odd-multiplier
/// permutation of the key space (Knuth multiplicative scatter).
pub fn rank_page(cfg: &ZipfKvConfig, rank: u64) -> u64 {
    rank.wrapping_mul(2_654_435_761) % cfg.keys
}

/// Generates the `(page, is_write)` operation trace. Same config (seed
/// included) ⇒ bit-identical trace.
pub fn trace(cfg: &ZipfKvConfig) -> Vec<(u64, bool)> {
    let mut rng = DetRng::new(cfg.seed);
    let table = ZipfTable::new(cfg.keys as usize, cfg.s);
    let write_p = cfg.write_permille as f64 / 1_000.0;
    (0..cfg.ops)
        .map(|_| {
            let rank = table.sample(&mut rng) as u64;
            let write = rng.chance(write_p);
            (rank_page(cfg, rank), write)
        })
        .collect()
}

/// Result of one key-value run.
#[derive(Debug, Clone)]
pub struct ZipfKvResult {
    /// Operations issued.
    pub accesses: u64,
    /// Faults taken by the region's policy container.
    pub faults: u64,
    /// Elapsed virtual time.
    pub elapsed: SimDuration,
    /// Kernel counter activity during the run.
    pub stats: KernelStats,
}

/// Replays the trace against a fresh kernel under `policy`.
pub fn run(cfg: &ZipfKvConfig, policy: PolicyProgram) -> Result<ZipfKvResult, HipecError> {
    let ops = trace(cfg);
    let mut k = HipecKernel::new(cfg.params.clone());
    let task = k.vm.create_task();
    let (base, _obj, key) = k.vm_map_hipec(task, cfg.keys * PAGE_SIZE, policy, cfg.pool)?;
    let per_op = k.vm.cost.tuple_op * 4;
    let snap = k.kernel_stats();
    let start = k.vm.now();
    for &(page, write) in &ops {
        k.access_sync(task, VAddr(base.0 + page * PAGE_SIZE), write)?;
        k.charge(per_op);
        k.vm.pump();
    }
    Ok(ZipfKvResult {
        accesses: ops.len() as u64,
        faults: k.container(key)?.stats.faults,
        elapsed: k.vm.now().since(start),
        stats: k.kernel_stats().diff(&snap),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipec_policies::PolicyKind;

    #[test]
    fn same_seed_gives_bit_identical_traces() {
        let cfg = ZipfKvConfig::small();
        assert_eq!(trace(&cfg), trace(&cfg));
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert_ne!(trace(&cfg), trace(&other), "seed must matter");
    }

    #[test]
    fn zipf_head_and_tail_mass_are_sane() {
        // With s = 1.0 the mass of the top k of n ranks is H(k)/H(n).
        // Top 10% of 256 keys (26 ranks): H(26)/H(256) ≈ 0.626. Bottom
        // half (ranks 128..256): (H(256)-H(128))/H(256) ≈ 0.113. A broken
        // RNG lane (uniform, constant, or mis-permuted) lands far outside
        // these bands.
        let cfg = ZipfKvConfig::small();
        let ops = trace(&cfg);
        let mut by_page = vec![0u64; cfg.keys as usize];
        for &(page, _) in &ops {
            by_page[page as usize] += 1;
        }
        // Invert the scatter to recover per-rank counts.
        let by_rank: Vec<u64> = (0..cfg.keys)
            .map(|rank| by_page[rank_page(&cfg, rank) as usize])
            .collect();
        let total = ops.len() as f64;
        let head: u64 = by_rank[..26].iter().sum();
        let tail: u64 = by_rank[128..].iter().sum();
        let head_mass = head as f64 / total;
        let tail_mass = tail as f64 / total;
        assert!(
            (0.55..=0.70).contains(&head_mass),
            "top-10% mass off: {head_mass:.3}"
        );
        assert!(
            (0.06..=0.17).contains(&tail_mass),
            "bottom-half mass off: {tail_mass:.3}"
        );
        // Popularity is monotone in rank (sampling noise aside): the most
        // popular rank clearly dominates the median one.
        assert!(by_rank[0] > 8 * by_rank[128].max(1));
    }

    #[test]
    fn writes_appear_at_the_configured_rate() {
        let cfg = ZipfKvConfig::small();
        let ops = trace(&cfg);
        let writes = ops.iter().filter(|&&(_, w)| w).count() as f64;
        let rate = writes / ops.len() as f64;
        let want = cfg.write_permille as f64 / 1_000.0;
        assert!(
            (rate - want).abs() < 0.03,
            "write rate {rate:.3} far from {want:.3}"
        );
    }

    #[test]
    fn runs_are_deterministic_and_skew_rewards_recency() {
        let cfg = ZipfKvConfig::small();
        let a = run(&cfg, PolicyKind::Lru.program()).expect("run");
        let b = run(&cfg, PolicyKind::Lru.program()).expect("run");
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.elapsed, b.elapsed);
        // On a skewed stream LRU must beat MRU (which evicts the head).
        let mru = run(&cfg, PolicyKind::Mru.program()).expect("run");
        assert!(
            a.faults < mru.faults,
            "LRU ({}) must beat MRU ({}) under Zipf skew",
            a.faults,
            mru.faults
        );
    }
}

//! The §5.3 nested-loops join workload (Figure 6).
//!
//! A 4 KB inner table is pinned in memory; the outer table (20–60 MB of
//! 64-byte tuples, memory-mapped) is scanned once per inner tuple — 64
//! full scans. With 40 MB of allocated memory, an LRU-like policy faults
//! on every outer page of every scan (cyclic thrash); MRU keeps a stable
//! prefix resident and only re-reads the tail.

use hipec_core::{HipecKernel, KernelStats, PolicyProgram};
use hipec_sim::{SimDuration, SimTime};
use hipec_vm::{bytes_to_pages, KernelParams, VAddr, PAGE_SIZE};

/// Join configuration (defaults are the paper's §5.3 parameters).
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Outer table size in bytes (the paper sweeps 20–60 MB).
    pub outer_bytes: u64,
    /// Inner table size in bytes (4 KB).
    pub inner_bytes: u64,
    /// Tuple size in bytes (64).
    pub tuple_bytes: u64,
    /// Memory allocated to the outer table's private pool (40 MB).
    pub memory_bytes: u64,
    /// Machine parameters.
    pub params: KernelParams,
}

impl JoinConfig {
    /// The paper's configuration with the given outer-table size.
    pub fn paper(outer_bytes: u64) -> Self {
        JoinConfig {
            outer_bytes,
            inner_bytes: 4 * 1024,
            tuple_bytes: 64,
            memory_bytes: 40 * 1024 * 1024,
            params: KernelParams::paper_64mb(),
        }
    }

    /// Number of outer-table scans (= inner-table tuples).
    pub fn loops(&self) -> u64 {
        self.inner_bytes / self.tuple_bytes
    }

    /// Outer table size in pages.
    pub fn outer_pages(&self) -> u64 {
        bytes_to_pages(self.outer_bytes)
    }
}

/// Result of one join run.
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// Elapsed virtual time.
    pub elapsed: SimDuration,
    /// Outer-table page faults.
    pub faults: u64,
    /// Page-ins from the backing store.
    pub pageins: u64,
    /// Kernel counter activity during the join phase (diff of snapshots
    /// taken after setup and at the end).
    pub stats: KernelStats,
}

/// Runs the join under a HiPEC policy controlling the outer table.
pub fn run(cfg: &JoinConfig, program: PolicyProgram) -> Result<JoinResult, String> {
    let mut k = HipecKernel::new(cfg.params.clone());
    let task = k.vm.create_task();

    // The pinned 4 KB inner table: an ordinary resident page.
    let (inner, _) =
        k.vm.vm_allocate(task, cfg.inner_bytes)
            .map_err(|e| e.to_string())?;
    k.access(task, inner, false).map_err(|e| e.to_string())?;

    // The outer table: memory-mapped under specific control.
    let memory_pages = bytes_to_pages(cfg.memory_bytes).min(cfg.outer_pages());
    let (outer, _obj, key) = k
        .vm_map_hipec(task, cfg.outer_bytes, program, memory_pages)
        .map_err(|e| e.to_string())?;

    let tuples_per_page = PAGE_SIZE / cfg.tuple_bytes;
    let compute_per_page = k.vm.cost.tuple_op.saturating_mul(tuples_per_page);
    let outer_pages = cfg.outer_pages();
    let snap = k.kernel_stats();
    let start = k.vm.now();

    for _ in 0..cfg.loops() {
        // One inner tuple joins against every outer tuple: scan the outer
        // table page by page, charging the per-tuple compute.
        k.charge(k.vm.cost.mem_touch); // read the inner tuple
        for p in 0..outer_pages {
            let r = k
                .access(task, VAddr(outer.0 + p * PAGE_SIZE), false)
                .map_err(|e| e.to_string())?;
            if let Some(done) = r.io_until {
                advance(&mut k, done);
            }
            k.charge(compute_per_page);
        }
    }
    k.vm.pump();
    let elapsed = k.vm.now().since(start);
    let faults = k.container(key).map_err(|e| e.to_string())?.stats.faults;
    Ok(JoinResult {
        elapsed,
        faults,
        pageins: k.vm.stats.get("pageins"),
        stats: k.kernel_stats().diff(&snap),
    })
}

fn advance(k: &mut HipecKernel, to: SimTime) {
    k.vm.clock.advance_to(to);
    k.vm.pump();
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipec_policies::{analytic, PolicyKind};

    const MB: u64 = 1024 * 1024;

    fn small(outer_mb: u64, memory_mb: u64) -> JoinConfig {
        let mut cfg = JoinConfig::paper(outer_mb * MB);
        cfg.memory_bytes = memory_mb * MB;
        cfg.inner_bytes = 512; // 8 scans: keep the test fast
        cfg
    }

    #[test]
    fn lru_faults_match_pf_l_when_thrashing() {
        let cfg = small(6, 4); // outer 6 MB, memory 4 MB
        let r = run(&cfg, PolicyKind::Lru.program()).expect("join");
        assert_eq!(
            r.faults,
            analytic::pf_lru(cfg.outer_bytes, cfg.loops(), PAGE_SIZE)
        );
    }

    #[test]
    fn mru_faults_match_pf_m() {
        let cfg = small(6, 4);
        let r = run(&cfg, PolicyKind::Mru.program()).expect("join");
        assert_eq!(
            r.faults,
            analytic::pf_mru(cfg.outer_bytes, cfg.memory_bytes, cfg.loops(), PAGE_SIZE)
        );
    }

    #[test]
    fn below_memory_size_policies_tie() {
        let cfg = small(3, 4); // outer fits in memory
        let lru = run(&cfg, PolicyKind::Lru.program()).expect("join");
        let mru = run(&cfg, PolicyKind::Mru.program()).expect("join");
        assert_eq!(lru.faults, cfg.outer_pages());
        assert_eq!(mru.faults, cfg.outer_pages());
        // Elapsed times within a hair of each other.
        let ratio = lru.elapsed.as_ns() as f64 / mru.elapsed.as_ns() as f64;
        assert!((0.99..1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mru_beats_lru_above_memory_size() {
        let cfg = small(6, 4);
        let lru = run(&cfg, PolicyKind::Lru.program()).expect("join");
        let mru = run(&cfg, PolicyKind::Mru.program()).expect("join");
        assert!(mru.faults < lru.faults);
        assert!(
            mru.elapsed < lru.elapsed,
            "MRU {} vs LRU {}",
            mru.elapsed,
            lru.elapsed
        );
        // The gap is roughly the analytic gain (fault counts are exact; the
        // time model adds queue/flush noise, so allow 25 %).
        let fault_time = SimDuration::from_ms(8);
        let gain = analytic::gain(
            cfg.outer_bytes,
            cfg.memory_bytes,
            cfg.loops(),
            PAGE_SIZE,
            fault_time,
        );
        let measured = lru.elapsed - mru.elapsed;
        let ratio = measured.as_ns() as f64 / gain.as_ns() as f64;
        assert!(
            (0.7..1.3).contains(&ratio),
            "measured gain {measured} vs analytic {gain} (ratio {ratio:.2})"
        );
    }
}

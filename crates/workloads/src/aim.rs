//! An AIM-Suite-III-like multiuser throughput benchmark (Figure 5).
//!
//! The paper uses AIM III to show the HiPEC modifications do not perturb
//! the throughput of *non-specific* applications. This module reproduces
//! the experiment's structure: N simulated users each run a weighted mix
//! of compute, disk and memory jobs over one CPU (round-robin scheduled)
//! and one shared paging disk; throughput is jobs per virtual minute.
//! Three mixes match the paper's: standard, disk-weighted, memory-weighted.

use hipec_sim::{DetRng, SimDuration, SimTime};
use hipec_vm::{TaskId, VAddr, PAGE_SIZE};

use crate::kernel_iface::SysKernel;

/// Job-mix weights.
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Mix name for reports.
    pub name: &'static str,
    /// Weight of pure-CPU jobs.
    pub compute: f64,
    /// Weight of disk-read jobs.
    pub disk: f64,
    /// Weight of memory-touch jobs.
    pub memory: f64,
}

impl Mix {
    /// The standard (balanced) workload.
    pub fn standard() -> Mix {
        Mix {
            name: "standard",
            compute: 1.0,
            disk: 1.0,
            memory: 1.0,
        }
    }

    /// Emphasizes disk usage.
    pub fn disk_heavy() -> Mix {
        Mix {
            name: "disk",
            compute: 0.5,
            disk: 2.0,
            memory: 0.5,
        }
    }

    /// Emphasizes memory usage.
    pub fn memory_heavy() -> Mix {
        Mix {
            name: "memory",
            compute: 0.5,
            disk: 0.5,
            memory: 2.0,
        }
    }

    fn draw(&self, rng: &mut DetRng) -> JobKind {
        let total = self.compute + self.disk + self.memory;
        let x = rng.f64() * total;
        if x < self.compute {
            JobKind::Compute
        } else if x < self.compute + self.disk {
            JobKind::Disk
        } else {
            JobKind::Memory
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Compute,
    Disk,
    Memory,
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct AimConfig {
    /// Number of simulated concurrent users.
    pub users: u32,
    /// Job mix.
    pub mix: Mix,
    /// Virtual run length.
    pub duration: SimDuration,
    /// Scheduler quantum.
    pub quantum: SimDuration,
    /// Per-user think time between jobs (AIM simulates interactive users;
    /// this is what gives the throughput curve its knee).
    pub think_time: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// CPU time of one compute job.
    pub compute_time: SimDuration,
    /// Pages read by one disk job.
    pub disk_pages: u64,
    /// Per-user file region (pages) disk jobs read from.
    pub file_pages: u64,
    /// Pages touched by one memory job.
    pub mem_pages: u64,
    /// Per-user anonymous region size (pages).
    pub mem_region_pages: u64,
}

impl Default for AimConfig {
    fn default() -> Self {
        AimConfig {
            users: 1,
            mix: Mix::standard(),
            duration: SimDuration::from_secs(30),
            quantum: SimDuration::from_ms(20),
            think_time: SimDuration::from_ms(1_000),
            seed: 0xA1B2,
            compute_time: SimDuration::from_ms(120),
            disk_pages: 16,
            file_pages: 4_096,
            mem_pages: 1_500,
            mem_region_pages: 2_200,
        }
    }
}

/// Benchmark result.
#[derive(Debug, Clone, Copy)]
pub struct AimResult {
    /// Jobs completed in the run.
    pub jobs: u64,
    /// Throughput in jobs per virtual minute.
    pub jobs_per_minute: f64,
    /// Total page faults during the run.
    pub faults: u64,
    /// Total page-ins during the run.
    pub pageins: u64,
}

#[derive(Debug)]
enum Op {
    Compute(SimDuration),
    Touch {
        region: Region,
        page: u64,
        write: bool,
    },
}

#[derive(Debug, Clone, Copy)]
enum Region {
    File,
    Anon,
}

struct User {
    task: TaskId,
    file_base: VAddr,
    anon_base: VAddr,
    ops: Vec<Op>,
    next_op: usize,
    blocked_until: Option<SimTime>,
    jobs_done: u64,
    mem_cursor: u64,
}

impl User {
    fn new_job(&mut self, cfg: &AimConfig, rng: &mut DetRng) {
        self.ops.clear();
        self.next_op = 0;
        match cfg.mix.draw(rng) {
            JobKind::Compute => self.ops.push(Op::Compute(cfg.compute_time)),
            JobKind::Disk => {
                // A sequential window somewhere in the (uncacheable) file.
                let window = cfg.file_pages.saturating_sub(cfg.disk_pages).max(1);
                let start = rng.below(window);
                for i in 0..cfg.disk_pages {
                    self.ops.push(Op::Touch {
                        region: Region::File,
                        page: start + i,
                        write: false,
                    });
                }
            }
            JobKind::Memory => {
                // Touch a rotating window of the user's anonymous region,
                // dirtying every eighth page.
                for i in 0..cfg.mem_pages {
                    let page = (self.mem_cursor + i) % cfg.mem_region_pages;
                    self.ops.push(Op::Touch {
                        region: Region::Anon,
                        page,
                        write: i % 8 == 0,
                    });
                }
                self.mem_cursor = (self.mem_cursor + cfg.mem_pages / 4) % cfg.mem_region_pages;
                self.ops.push(Op::Compute(SimDuration::from_ms(10)));
            }
        }
    }
}

/// Runs the benchmark on the given kernel.
pub fn run(k: &mut impl SysKernel, cfg: &AimConfig) -> Result<AimResult, String> {
    let mut rng = DetRng::new(cfg.seed ^ (cfg.users as u64) << 32);
    let mut users = Vec::with_capacity(cfg.users as usize);
    for _ in 0..cfg.users {
        let task = k.vm().create_task();
        let (file_base, _) = k
            .vm()
            .vm_map(task, cfg.file_pages * PAGE_SIZE)
            .map_err(|e| e.to_string())?;
        let (anon_base, _) = k
            .vm()
            .vm_allocate(task, cfg.mem_region_pages * PAGE_SIZE)
            .map_err(|e| e.to_string())?;
        let mut u = User {
            task,
            file_base,
            anon_base,
            ops: Vec::new(),
            next_op: 0,
            blocked_until: None,
            jobs_done: 0,
            mem_cursor: 0,
        };
        u.new_job(cfg, &mut rng);
        users.push(u);
    }

    let start = k.now();
    let end = start + cfg.duration;
    let start_faults = k.vm().stats.get("faults");
    let start_pageins = k.vm().stats.get("pageins");
    let mut next = 0usize;

    while k.now() < end {
        // Find a runnable user, round-robin from `next`.
        let now = k.now();
        let runnable = (0..users.len())
            .map(|i| (next + i) % users.len())
            .find(|&i| users[i].blocked_until.is_none_or(|t| t <= now));
        let Some(i) = runnable else {
            // Everyone is waiting on the disk: idle until the first wake.
            let wake = users
                .iter()
                .filter_map(|u| u.blocked_until)
                .min()
                .expect("somebody must be blocked");
            k.vm().clock.advance_to(wake);
            k.pump();
            continue;
        };
        next = (i + 1) % users.len().max(1);
        users[i].blocked_until = None;
        let cs = k.vm().cost.context_switch;
        k.charge(cs);

        // Run user i for one quantum (or until it blocks).
        let slice_end = k.now() + cfg.quantum;
        while k.now() < slice_end && k.now() < end {
            if users[i].next_op >= users[i].ops.len() {
                users[i].jobs_done += 1;
                let think_until = k.now() + cfg.think_time;
                let u = &mut users[i];
                u.new_job(cfg, &mut rng);
                if !cfg.think_time.is_zero() {
                    u.blocked_until = Some(think_until);
                    break;
                }
                continue;
            }
            let idx = users[i].next_op;
            match users[i].ops[idx] {
                Op::Compute(remaining) => {
                    let slice = slice_end.since(k.now()).min(remaining);
                    k.charge(slice);
                    let left = remaining - slice;
                    if left.is_zero() {
                        users[i].next_op += 1;
                    } else {
                        users[i].ops[idx] = Op::Compute(left);
                    }
                }
                Op::Touch {
                    region,
                    page,
                    write,
                } => {
                    let base = match region {
                        Region::File => users[i].file_base,
                        Region::Anon => users[i].anon_base,
                    };
                    let addr = VAddr(base.0 + page * PAGE_SIZE);
                    let r = k.access(users[i].task, addr, write)?;
                    users[i].next_op += 1;
                    if let Some(done) = r.io_until {
                        // Block on the device; the CPU runs someone else.
                        users[i].blocked_until = Some(done);
                        break;
                    }
                }
            }
        }
        k.pump();
    }

    let jobs: u64 = users.iter().map(|u| u.jobs_done).sum();
    let minutes = cfg.duration.as_mins_f64();
    Ok(AimResult {
        jobs,
        jobs_per_minute: jobs as f64 / minutes,
        faults: k.vm().stats.get("faults") - start_faults,
        pageins: k.vm().stats.get("pageins") - start_pageins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipec_core::HipecKernel;
    use hipec_vm::{Kernel, KernelParams};

    fn quick(users: u32) -> AimConfig {
        AimConfig {
            users,
            duration: SimDuration::from_secs(8),
            think_time: SimDuration::from_ms(500),
            mem_pages: 200,
            mem_region_pages: 300,
            ..AimConfig::default()
        }
    }

    #[test]
    fn throughput_grows_with_a_second_user() {
        let mut one = Kernel::new(KernelParams::paper_64mb());
        let r1 = run(&mut one, &quick(1)).expect("run");
        let mut four = Kernel::new(KernelParams::paper_64mb());
        let r4 = run(&mut four, &quick(4)).expect("run");
        assert!(r1.jobs > 0);
        assert!(
            r4.jobs_per_minute > r1.jobs_per_minute,
            "overlap must help: {} vs {}",
            r4.jobs_per_minute,
            r1.jobs_per_minute
        );
    }

    #[test]
    fn deterministic_given_a_seed() {
        let mut a = Kernel::new(KernelParams::paper_64mb());
        let mut b = Kernel::new(KernelParams::paper_64mb());
        let ra = run(&mut a, &quick(3)).expect("run");
        let rb = run(&mut b, &quick(3)).expect("run");
        assert_eq!(ra.jobs, rb.jobs);
        assert_eq!(ra.faults, rb.faults);
    }

    #[test]
    fn hipec_kernel_throughput_is_within_noise_of_mach() {
        // A longer window so job-count granularity does not mask the
        // comparison (~400 jobs; one job is 0.25 %).
        let mut cfg = quick(4);
        cfg.duration = SimDuration::from_secs(60);
        let mut mach = Kernel::new(KernelParams::paper_64mb());
        let rm = run(&mut mach, &cfg).expect("mach run");
        let mut hipec = HipecKernel::new(KernelParams::paper_64mb());
        let rh = run(&mut hipec, &cfg).expect("hipec run");
        let ratio = rh.jobs_per_minute / rm.jobs_per_minute;
        assert!(
            (0.97..=1.005).contains(&ratio),
            "Figure 5's claim: ratio {ratio:.4} (HiPEC {} vs Mach {})",
            rh.jobs_per_minute,
            rm.jobs_per_minute
        );
    }

    #[test]
    fn mixes_shift_the_bottleneck() {
        let mut disk_cfg = quick(4);
        disk_cfg.mix = Mix::disk_heavy();
        let mut mem_cfg = quick(4);
        mem_cfg.mix = Mix::memory_heavy();
        let mut k1 = Kernel::new(KernelParams::paper_64mb());
        let rd = run(&mut k1, &disk_cfg).expect("disk mix");
        let mut k2 = Kernel::new(KernelParams::paper_64mb());
        let rmem = run(&mut k2, &mem_cfg).expect("memory mix");
        assert!(
            rd.pageins > rmem.pageins,
            "disk mix must hit the device more ({} vs {})",
            rd.pageins,
            rmem.pageins
        );
        assert!(rmem.faults > 0);
    }
}

//! Deterministic random numbers for workload generation.
//!
//! All stochastic behaviour in the workspace flows through [`DetRng`], a thin
//! wrapper over a seeded [`rand::rngs::SmallRng`]. Besides uniform draws it
//! provides the two distributions the synthetic workloads need: a bounded
//! Zipf sampler (skewed page popularity) and an exponential sampler
//! (inter-arrival / service-time jitter).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic, seedable random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse-CDF sampling; guard the open interval so ln(0) cannot occur.
        let u = self.f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Draws from a Zipf distribution over `{0, .., n-1}` with exponent `s`,
    /// using rejection-inversion-free direct inversion over the harmonic CDF.
    ///
    /// Suitable for the modest `n` the workloads use (≤ a few million); the
    /// CDF table is built lazily by [`ZipfTable`], this method is a one-shot
    /// convenience for small `n`.
    pub fn zipf_once(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        let mut norm = 0.0;
        for k in 1..=n {
            norm += 1.0 / (k as f64).powf(s);
        }
        let target = self.f64() * norm;
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            if acc >= target {
                return k - 1;
            }
        }
        n - 1
    }
}

/// A precomputed Zipf CDF for repeated sampling over a fixed support.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the CDF for ranks `{0, .., n-1}` with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let norm = acc;
        for v in &mut cdf {
            *v /= norm;
        }
        ZipfTable { cdf }
    }

    /// Samples a rank using `rng`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1_000), b.below(1_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut r = DetRng::new(7);
        for _ in 0..1_000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::new(99);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(8.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 8.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let table = ZipfTable::new(100, 1.0);
        let mut r = DetRng::new(123);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[table.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_once_matches_table_distribution_shape() {
        let mut r = DetRng::new(5);
        let mut counts = [0usize; 10];
        for _ in 0..5_000 {
            counts[r.zipf_once(10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[9]);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}

//! The monotonic virtual clock a simulated kernel owns.

use crate::time::{SimDuration, SimTime};

/// A monotonic virtual clock.
///
/// The clock only moves forward: [`VirtualClock::advance`] adds a duration,
/// [`VirtualClock::advance_to`] jumps to a later instant and is a no-op if the
/// target is in the past (so event-driven code can blindly fast-forward to a
/// completion time that may already have been passed by CPU accounting).
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// Creates a clock at simulation boot (t = 0).
    pub fn new() -> Self {
        VirtualClock { now: SimTime::ZERO }
    }

    /// Returns the current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Moves the clock to `t` if `t` is in the future; otherwise leaves it
    /// unchanged. Returns the (possibly unchanged) current instant.
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_us(5));
        assert_eq!(c.now().as_ns(), 5_000);
        c.advance(SimDuration::from_ns(1));
        assert_eq!(c.now().as_ns(), 5_001);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut c = VirtualClock::new();
        c.advance_to(SimTime::from_ns(100));
        assert_eq!(c.now().as_ns(), 100);
        // Jumping "back" is a no-op.
        c.advance_to(SimTime::from_ns(50));
        assert_eq!(c.now().as_ns(), 100);
    }
}

//! Measurement helpers for the experiment harnesses.
//!
//! The benchmark binaries in `hipec-bench` print paper-style tables and
//! series. This module provides the small set of aggregates they need:
//! [`Counter`] sets, [`OnlineStats`] (streaming mean/min/max/variance),
//! [`Histogram`] (power-of-two latency buckets) and [`Series`] (labelled
//! (x, y) curves, one per line of a figure).

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimDuration;

/// A named set of monotonically increasing event counters.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    counts: BTreeMap<&'static str, u64>,
}

impl Counter {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name` (creating it at zero first).
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counts.entry(name).or_insert(0) += n;
    }

    /// Increments counter `name` by one.
    pub fn bump(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads counter `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }
}

/// Streaming mean / variance / extrema over `f64` samples (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A histogram of durations with power-of-two nanosecond buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    total_ns: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            total_ns: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_ns();
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_ns((self.total_ns / self.count as u128) as u64)
        }
    }

    /// Total of all recorded samples, in nanoseconds.
    pub fn total_ns(&self) -> u128 {
        self.total_ns
    }

    /// The occupied buckets as `(floor_ns, ceil_ns, count)` triples, in
    /// ascending order. Bucket `i` covers samples in `[2^i, 2^(i+1))`
    /// nanoseconds (bucket 0 additionally holds zero-length samples) —
    /// the serialization surface for offline analyzers and `--json` bench
    /// output.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| {
                let floor = if i == 0 { 0 } else { 1u64 << i };
                let ceil = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                (floor, ceil, c)
            })
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
    }

    /// Approximate quantile `q` in `[0, 1]`, resolved to bucket upper bounds.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return SimDuration::from_ns(if i >= 63 { u64::MAX } else { 1u64 << (i + 1) });
            }
        }
        SimDuration::from_ns(u64::MAX)
    }
}

/// One labelled curve of a figure: a list of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label (e.g. "LRU" or "HiPEC MRU").
    pub label: String,
    /// Data points in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Looks up `y` for an exact `x` (first match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }
}

/// A fixed-width text table matching the paper's presentation style.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counter::new();
        c.bump("faults");
        c.add("faults", 9);
        c.add("flushes", 2);
        assert_eq!(c.get("faults"), 10);
        assert_eq!(c.get("flushes"), 2);
        assert_eq!(c.get("missing"), 0);
        let all: Vec<_> = c.iter().collect();
        assert_eq!(all, vec![("faults", 10), ("flushes", 2)]);
    }

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_is_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let mut h = Histogram::new();
        for us in 1..=100u64 {
            h.record(SimDuration::from_us(us));
        }
        assert_eq!(h.count(), 100);
        let mean = h.mean().as_ns();
        assert!((mean as i64 - 50_500).abs() < 10, "mean {mean}");
        // The 0.5 quantile bucket must cover the median (50.5 µs).
        assert!(h.quantile(0.5).as_ns() >= 50_500);
        assert!(h.quantile(1.0) >= h.quantile(0.5));
    }

    #[test]
    fn histogram_buckets_serialize_and_merge() {
        let mut h = Histogram::new();
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_ns(5));
        h.record(SimDuration::from_ns(5));
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1, 1), (4, 7, 2)]);
        assert_eq!(h.total_ns(), 10);
        let mut other = Histogram::new();
        other.record(SimDuration::from_ns(6));
        h.merge(&other);
        assert_eq!(h.count(), 4);
        assert_eq!(h.nonzero_buckets().last(), Some((4, 7, 3)));
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("LRU");
        s.push(20.0, 1.5);
        s.push(40.0, 3.0);
        assert_eq!(s.y_at(40.0), Some(3.0));
        assert_eq!(s.y_at(99.0), None);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["Evaluation", "Average Time"]);
        t.row(vec!["Null System Call", "19 µs"]);
        t.row(vec!["Null IPC Call", "292 µs"]);
        let out = t.to_string();
        assert!(out.contains("| Evaluation"));
        assert!(out.contains("| Null IPC Call"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Every line has identical width.
        let widths: Vec<_> = out.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }
}

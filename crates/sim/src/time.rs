//! Virtual time: instants and durations measured in simulated nanoseconds.
//!
//! The whole workspace runs on a virtual clock so that "elapsed time" results
//! (the paper's Tables 3 and Figures 5/6) are deterministic. [`SimTime`] is an
//! instant since simulation boot; [`SimDuration`] is a span. Both are thin
//! wrappers over `u64` nanoseconds with saturating arithmetic, so a
//! malfunctioning policy cannot panic the simulator by overflow.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the virtual clock, in nanoseconds since simulation boot.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation boot instant.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after boot.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the number of nanoseconds since boot.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration of `m` minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000_000)
    }

    /// Creates a duration from a fractional number of microseconds.
    ///
    /// Negative inputs clamp to zero; values are rounded to the nearest
    /// nanosecond.
    pub fn from_us_f64(us: f64) -> Self {
        if us <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((us * 1_000.0).round() as u64)
        }
    }

    /// Returns the duration in nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the duration in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000_000_000.0
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an event count.
    pub const fn saturating_mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }

    /// Halves the duration, clamping at `floor`.
    pub fn halved_with_floor(self, floor: SimDuration) -> SimDuration {
        let half = SimDuration(self.0 / 2);
        if half < floor {
            floor
        } else {
            half
        }
    }

    /// Doubles the duration, clamping at `ceil`.
    pub fn doubled_with_ceil(self, ceil: SimDuration) -> SimDuration {
        let double = SimDuration(self.0.saturating_mul(2));
        if double > ceil {
            ceil
        } else {
            double
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    /// Formats with a unit chosen by magnitude (ns, µs, ms, s, min).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}µs", self.as_us_f64())
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_ms_f64())
        } else if ns < 60_000_000_000 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else {
            write!(f, "{:.2}min", self.as_mins_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_us(3).as_ns(), 3_000);
        assert_eq!(SimDuration::from_ms(3).as_ns(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_ns(), 3_000_000_000);
        assert_eq!(SimDuration::from_mins(2).as_ns(), 120_000_000_000);
    }

    #[test]
    fn fractional_conversions() {
        let d = SimDuration::from_ns(1_500);
        assert!((d.as_us_f64() - 1.5).abs() < 1e-9);
        let d = SimDuration::from_ms(2_500);
        assert!((d.as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn from_us_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_us_f64(-1.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_us_f64(1.4999),
            SimDuration::from_ns(1_500)
        );
    }

    #[test]
    fn instant_arithmetic_saturates() {
        let early = SimTime::from_ns(10);
        let late = SimTime::from_ns(25);
        assert_eq!(late.since(early).as_ns(), 15);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_us(10);
        let b = SimDuration::from_us(4);
        assert_eq!((a + b).as_ns(), 14_000);
        assert_eq!((a - b).as_ns(), 6_000);
        assert_eq!((b - a), SimDuration::ZERO);
        assert_eq!((a * 3).as_ns(), 30_000);
        assert_eq!((a / 2).as_ns(), 5_000);
        assert_eq!(
            (a / 0).as_ns(),
            10_000,
            "division by zero clamps divisor to 1"
        );
    }

    #[test]
    fn adaptive_halving_and_doubling_clamp() {
        let floor = SimDuration::from_ms(250);
        let ceil = SimDuration::from_secs(8);
        assert_eq!(SimDuration::from_ms(300).halved_with_floor(floor), floor);
        assert_eq!(
            SimDuration::from_ms(1_000).halved_with_floor(floor),
            SimDuration::from_ms(500)
        );
        assert_eq!(SimDuration::from_secs(5).doubled_with_ceil(ceil), ceil);
        assert_eq!(
            SimDuration::from_secs(2).doubled_with_ceil(ceil),
            SimDuration::from_secs(4)
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_ns(42).to_string(), "42ns");
        assert_eq!(SimDuration::from_us(42).to_string(), "42.00µs");
        assert_eq!(SimDuration::from_ms(42).to_string(), "42.00ms");
        assert_eq!(SimDuration::from_secs(42).to_string(), "42.00s");
        assert_eq!(SimDuration::from_mins(42).to_string(), "42.00min");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_us).sum();
        assert_eq!(total.as_ns(), 10_000);
    }
}

//! Allocation-free log-linear latency histograms over virtual-time spans.
//!
//! [`LatencyHistogram`] is the fixed-footprint (HDR-style) engine behind
//! the per-container / per-device / per-opcode latency attribution the
//! observability layer exports. The coarse power-of-two [`crate::stats::
//! Histogram`] stays as the offline-analysis aggregate; this type trades a
//! few kilobytes for bounded (~6 %) relative error at every percentile,
//! plus the merge/diff algebra `KernelStats` snapshots need.
//!
//! **Bucket layout.** Values are virtual nanoseconds. Each power-of-two
//! octave is split into `2^SUB_BITS = 16` equal sub-buckets, so bucket
//! width is at most 1/16 of the value — the relative quantile error is
//! bounded by 2^-SUB_BITS. Values below 16 ns land in 16 exact unit
//! buckets (group 0); a value with most-significant bit `m >= 4` lands in
//! group `m - 3` at offset `(v >> (m - 4)) - 16`. With [`GROUPS`] = 35
//! groups the top representable octave is `[2^37, 2^38)`; values at or
//! above [`SATURATION_NS`] (2^38 ns ≈ 4.6 virtual minutes, far beyond any
//! sane fault-service span) clamp into the last bucket and bump the
//! `saturated` counter so truncation is never silent.
//!
//! **Determinism.** Recording, merge, diff and quantiles are pure integer
//! functions of the recorded multiset (quantile ranks use one f64
//! multiply, identical on every IEEE-754 platform), so two runs that
//! record the same virtual-time spans produce bit-identical histograms —
//! the property `tests/jit.rs` pins across executor backends and
//! `scripts/verify.sh` pins across reruns.

use core::fmt;

use crate::time::SimDuration;

/// log2 of the number of sub-buckets per power-of-two octave.
pub const SUB_BITS: u32 = 4;
/// Sub-buckets per octave (and width of the exact group 0).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Number of bucket groups: group 0 is exact 0..16 ns, groups 1..=34
/// cover octaves `[2^4, 2^38)`.
pub const GROUPS: usize = 35;
/// Total bucket count (4.5 KB of `u64` counters per histogram).
pub const BUCKETS: usize = SUB_BUCKETS * GROUPS;
/// Values at or above this clamp into the last bucket and count as
/// saturated.
pub const SATURATION_NS: u64 = 1 << 38;

/// A fixed-footprint log-linear histogram of virtual-time durations.
///
/// `Copy` + `Eq` so it can ride inside [`LatencyRow`]-style snapshot rows
/// and be compared bit-for-bit by differential tests.
///
/// [`LatencyRow`]: https://docs.rs (see `hipec-core::obs`)
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    saturated: u64,
    max_ns: u64,
    total_ns: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl LatencyHistogram {
    /// The empty histogram (also usable in `const` array initializers).
    pub const EMPTY: LatencyHistogram = LatencyHistogram {
        buckets: [0; BUCKETS],
        count: 0,
        saturated: 0,
        max_ns: 0,
        total_ns: 0,
    };

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// The bucket index a nanosecond value lands in.
    fn index_of(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let ns = ns.min(SATURATION_NS - 1);
        let msb = 63 - ns.leading_zeros();
        let group = (msb - (SUB_BITS - 1)) as usize;
        let offset = ((ns >> (msb - SUB_BITS)) as usize) - SUB_BUCKETS;
        group * SUB_BUCKETS + offset
    }

    /// The inclusive `[lower, upper]` nanosecond range of bucket `idx`.
    fn bounds_of(idx: usize) -> (u64, u64) {
        debug_assert!(idx < BUCKETS);
        let (group, offset) = (idx / SUB_BUCKETS, (idx % SUB_BUCKETS) as u64);
        if group == 0 {
            (offset, offset)
        } else {
            let lower = (SUB_BUCKETS as u64 + offset) << (group - 1);
            let upper = ((SUB_BUCKETS as u64 + offset + 1) << (group - 1)) - 1;
            (lower, upper)
        }
    }

    /// Records one duration sample. Values at or above [`SATURATION_NS`]
    /// clamp into the last bucket and bump the saturation counter; the
    /// exact maximum is tracked separately either way.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_ns();
        if ns >= SATURATION_NS {
            self.saturated += 1;
        }
        self.buckets[Self::index_of(ns)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
        self.total_ns += ns as u128;
    }

    /// Number of recorded samples (saturated ones included).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of samples that clamped into the last bucket.
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// The exact largest recorded sample (zero when empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ns(self.max_ns)
    }

    /// Sum of all recorded samples, in nanoseconds.
    pub fn total_ns(&self) -> u128 {
        self.total_ns
    }

    /// Quantile `q` in `[0, 1]`, resolved to the containing bucket's
    /// upper bound and clamped to the exact recorded maximum (so a
    /// single-sample histogram reports that sample at every quantile).
    /// Returns zero when empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = Self::bounds_of(idx);
                return SimDuration::from_ns(upper.min(self.max_ns));
            }
        }
        SimDuration::from_ns(self.max_ns)
    }

    /// Merges another histogram's samples into this one (bucket-wise add).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.saturated += other.saturated;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.total_ns += other.total_ns;
    }

    /// The interval histogram between an `earlier` snapshot of the same
    /// histogram and this one: bucket-wise saturating subtraction. The
    /// exact per-interval maximum is not recoverable from two cumulative
    /// snapshots, so the later snapshot's maximum is kept as an upper
    /// bound (and quantiles stay clamped by it).
    pub fn diff(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut out = *self;
        for (b, &e) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *b = b.saturating_sub(e);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.saturated = self.saturated.saturating_sub(earlier.saturated);
        out.total_ns = self.total_ns.saturating_sub(earlier.total_ns);
        out
    }

    /// The occupied buckets as `(lower_ns, upper_ns, count)` triples in
    /// ascending order — the serialization surface for `stats_export`
    /// and bench `--json`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(idx, &c)| {
                let (lower, upper) = Self::bounds_of(idx);
                (lower, upper, c)
            })
    }
}

impl fmt::Debug for LatencyHistogram {
    /// Prints only the occupied buckets, so proptest failure output and
    /// snapshot diffs stay readable despite the 560-slot backing array.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("LatencyHistogram");
        d.field("count", &self.count)
            .field("saturated", &self.saturated)
            .field("max_ns", &self.max_ns)
            .field("total_ns", &self.total_ns);
        let occupied: Vec<String> = self
            .nonzero_buckets()
            .map(|(lo, hi, c)| format!("[{lo},{hi}]x{c}"))
            .collect();
        d.field("buckets", &occupied).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in 0..32u64 {
            h.record(SimDuration::from_ns(ns));
        }
        // Groups 0 and 1 have unit-width buckets: 32 distinct buckets.
        assert_eq!(h.nonzero_buckets().count(), 32);
        for (lo, hi, c) in h.nonzero_buckets() {
            assert_eq!(lo, hi);
            assert_eq!(c, 1);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.saturated(), 0);
    }

    #[test]
    fn bucket_bounds_tile_the_range() {
        // Every bucket's lower bound is the previous bucket's upper + 1,
        // and the indexing function maps both bounds back to the bucket.
        let mut expect_lower = 0u64;
        for idx in 0..BUCKETS {
            let (lo, hi) = LatencyHistogram::bounds_of(idx);
            assert_eq!(lo, expect_lower, "bucket {idx} lower bound");
            assert!(hi >= lo);
            assert_eq!(LatencyHistogram::index_of(lo), idx);
            assert_eq!(LatencyHistogram::index_of(hi), idx);
            expect_lower = hi + 1;
        }
        assert_eq!(expect_lower, SATURATION_NS, "buckets tile [0, 2^38)");
    }

    #[test]
    fn relative_error_is_bounded() {
        // Upper bound of the containing bucket is within 1/16 of the value.
        for ns in [17u64, 100, 999, 12_345, 1 << 20, (1 << 37) + 12_345] {
            let (lo, hi) = LatencyHistogram::bounds_of(LatencyHistogram::index_of(ns));
            assert!(lo <= ns && ns <= hi);
            assert!(
                hi - lo <= ns / SUB_BUCKETS as u64,
                "bucket too wide at {ns}"
            );
        }
    }

    #[test]
    fn saturation_clamps_and_counts() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_ns(SATURATION_NS));
        h.record(SimDuration::from_ns(u64::MAX));
        h.record(SimDuration::from_ns(SATURATION_NS - 1));
        assert_eq!(h.count(), 3);
        assert_eq!(h.saturated(), 2);
        assert_eq!(h.max().as_ns(), u64::MAX);
        // All three land in the last bucket.
        let (lo, hi, c) = h.nonzero_buckets().next().unwrap();
        assert_eq!((lo, hi, c), ((31u64) << 33, SATURATION_NS - 1, 3));
    }

    #[test]
    fn quantiles_walk_buckets_and_clamp_to_max() {
        let mut h = LatencyHistogram::new();
        for us in 1..=100u64 {
            h.record(SimDuration::from_us(us));
        }
        let p50 = h.quantile(0.5).as_ns();
        // Median is 50.5 µs; log-linear error bound is 1/16.
        assert!((50_000..=53_200).contains(&p50), "p50 {p50}");
        assert!(h.quantile(0.99) >= h.quantile(0.9));
        assert_eq!(h.quantile(1.0).as_ns(), 100_000, "p100 clamps to max");
        let mut single = LatencyHistogram::new();
        single.record(SimDuration::from_ns(12_345));
        assert_eq!(single.quantile(0.5).as_ns(), 12_345);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
        assert_eq!(h.quantile(1.0), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
        assert_eq!(h.nonzero_buckets().count(), 0);
        assert_eq!(h, LatencyHistogram::EMPTY);
    }

    #[test]
    fn merge_then_diff_round_trips() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for ns in [3u64, 99, 4_000, 1 << 30] {
            a.record(SimDuration::from_ns(ns));
        }
        for ns in [7u64, 99, SATURATION_NS + 5] {
            b.record(SimDuration::from_ns(ns));
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.saturated(), 1);
        let back = merged.diff(&a);
        assert_eq!(back.count(), b.count());
        assert_eq!(back.saturated(), b.saturated());
        assert_eq!(back.total_ns(), b.total_ns());
        let occupied: Vec<_> = back.nonzero_buckets().collect();
        let expect: Vec<_> = b.nonzero_buckets().collect();
        assert_eq!(occupied, expect);
    }

    #[test]
    fn debug_prints_occupied_buckets_only() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_ns(5));
        let s = format!("{h:?}");
        assert!(s.contains("[5,5]x1"), "{s}");
        assert!(s.len() < 200, "debug output stays compact: {s}");
    }
}

//! The virtual-time cost model.
//!
//! The HiPEC paper measures elapsed wall-clock time on an Acer Altos 10000
//! (Intel 486-50, 64 MB, OSF/1 MK 5.0.2). We reproduce those experiments in
//! virtual time: the simulated kernel charges every primitive operation a
//! constant from this model. The default preset,
//! [`CostModel::acer_altos_486`], is calibrated so that the paper's own
//! micro-measurements come out of the model:
//!
//! * Table 3: a no-I/O zero-fill fault costs `fault_base + zero_fill +
//!   pmap_enter` = 392 µs (4016.5 ms / 10 240 faults);
//! * Table 3: HiPEC adds ≈ 7 µs per fault (1.8 % of 392 µs) — region check,
//!   executor invocation, container timestamps, command fetch/decode;
//! * Table 4: `null_syscall` = 19 µs, `null_ipc` = 292 µs, and the simple
//!   fault path interprets three commands at `cmd_fetch_decode` = 50 ns each
//!   (the paper's ≈ 150 ns);
//! * the disk model in `hipec-disk` is parameterized separately so that a
//!   page-in averages ≈ 7.7 ms, making the with-I/O fault ≈ 8.06 ms
//!   (82 485.5 ms / 10 240 faults).

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Per-primitive virtual CPU costs charged by the simulated kernel.
///
/// All fields are public so experiments and ablations can sweep them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    // --- Generic CPU primitives -------------------------------------------
    /// Touching one resident page from user code (TLB hit path).
    pub mem_touch: SimDuration,
    /// One tuple comparison + cursor advance in the join workload.
    pub tuple_op: SimDuration,
    /// A context switch between simulated jobs.
    pub context_switch: SimDuration,

    // --- Page-fault path ---------------------------------------------------
    /// Trap entry, map lookup and fault bookkeeping (charged on every fault).
    pub fault_base: SimDuration,
    /// Zero-filling a fresh anonymous page.
    pub zero_fill: SimDuration,
    /// Installing a translation in the pmap.
    pub pmap_enter: SimDuration,
    /// Removing a translation from the pmap (eviction).
    pub pmap_remove: SimDuration,

    // --- Replacement primitives (shared by native and interpreted policies)
    /// One page-queue enqueue/dequeue/remove.
    pub queue_op: SimDuration,
    /// Checking or clearing a reference/modify bit through the pmap.
    pub bit_op: SimDuration,
    /// CPU cost of handing a dirty page to the asynchronous flush list.
    pub flush_handoff: SimDuration,
    /// Driver CPU cost per disk page transfer (the device time is modelled
    /// by `hipec-disk`).
    pub pagein_cpu: SimDuration,

    // --- Kernel/user communication (Table 4) -------------------------------
    /// A null system call (also the per-leg cost of an upcall).
    pub null_syscall: SimDuration,
    /// A null IPC round trip (Mach message-based RPC).
    pub null_ipc: SimDuration,

    // --- HiPEC-specific ----------------------------------------------------
    /// The "is this fault in a HiPEC region?" check added to the fault
    /// handler (paid on every fault in a HiPEC kernel, specific or not).
    pub hipec_region_check: SimDuration,
    /// Invoking the policy executor: container lookup, operand binding and
    /// the start/end timestamps the security checker inspects.
    pub executor_invoke: SimDuration,
    /// Fetching, decoding and dispatching one HiPEC command.
    pub cmd_fetch_decode: SimDuration,
    /// Fixed CPU cost of one security-checker wakeup.
    pub checker_wakeup: SimDuration,
    /// Additional checker cost per container inspected.
    pub checker_per_container: SimDuration,
    /// Global-frame-manager processing of one `Request`/`Release`.
    pub request_grant: SimDuration,
}

impl CostModel {
    /// The calibrated 1994 Acer Altos 10000 preset (see module docs).
    pub fn acer_altos_486() -> Self {
        CostModel {
            mem_touch: SimDuration::from_ns(400),
            tuple_op: SimDuration::from_ns(2_000),
            context_switch: SimDuration::from_us(25),
            fault_base: SimDuration::from_us(180),
            zero_fill: SimDuration::from_us(200),
            pmap_enter: SimDuration::from_us(12),
            pmap_remove: SimDuration::from_us(10),
            queue_op: SimDuration::from_ns(800),
            bit_op: SimDuration::from_ns(300),
            flush_handoff: SimDuration::from_us(40),
            pagein_cpu: SimDuration::from_us(120),
            null_syscall: SimDuration::from_us(19),
            null_ipc: SimDuration::from_us(292),
            hipec_region_check: SimDuration::from_ns(800),
            executor_invoke: SimDuration::from_us(6),
            cmd_fetch_decode: SimDuration::from_ns(50),
            checker_wakeup: SimDuration::from_us(10),
            checker_per_container: SimDuration::from_us(1),
            request_grant: SimDuration::from_us(3),
        }
    }

    /// A rough 2020s laptop preset, used by ablations that want to show the
    /// mechanism's overhead ratios on modern constants. Not calibrated
    /// against any published measurement.
    pub fn modern() -> Self {
        CostModel {
            mem_touch: SimDuration::from_ns(5),
            tuple_op: SimDuration::from_ns(10),
            context_switch: SimDuration::from_us(2),
            fault_base: SimDuration::from_us(1),
            zero_fill: SimDuration::from_us(2),
            pmap_enter: SimDuration::from_ns(300),
            pmap_remove: SimDuration::from_ns(250),
            queue_op: SimDuration::from_ns(20),
            bit_op: SimDuration::from_ns(10),
            flush_handoff: SimDuration::from_ns(500),
            pagein_cpu: SimDuration::from_us(2),
            null_syscall: SimDuration::from_ns(300),
            null_ipc: SimDuration::from_us(5),
            hipec_region_check: SimDuration::from_ns(15),
            executor_invoke: SimDuration::from_ns(100),
            cmd_fetch_decode: SimDuration::from_ns(2),
            checker_wakeup: SimDuration::from_ns(500),
            checker_per_container: SimDuration::from_ns(50),
            request_grant: SimDuration::from_ns(100),
        }
    }

    /// Cost of a zero-fill (no backing store) page fault on the plain kernel.
    pub fn fault_zero_fill(&self) -> SimDuration {
        self.fault_base + self.zero_fill + self.pmap_enter
    }

    /// CPU-side cost of a page-in fault, excluding device time.
    pub fn fault_pagein_cpu(&self) -> SimDuration {
        self.fault_base + self.pagein_cpu + self.pmap_enter
    }
}

impl Default for CostModel {
    /// Defaults to the paper's calibrated 486 preset.
    fn default() -> Self {
        CostModel::acer_altos_486()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_fault_matches_table3_calibration() {
        let m = CostModel::acer_altos_486();
        // 4016.5 ms / 10240 faults = 392.24 µs; the model composes to 392 µs.
        assert_eq!(m.fault_zero_fill(), SimDuration::from_us(392));
    }

    #[test]
    fn table4_constants() {
        let m = CostModel::default();
        assert_eq!(m.null_syscall, SimDuration::from_us(19));
        assert_eq!(m.null_ipc, SimDuration::from_us(292));
        // Three commands on the simple fault path ≈ the paper's 150 ns.
        assert_eq!((m.cmd_fetch_decode * 3).as_ns(), 150);
    }

    #[test]
    fn hipec_per_fault_overhead_is_small_positive() {
        let m = CostModel::default();
        let overhead = m.hipec_region_check + m.executor_invoke + m.cmd_fetch_decode * 3;
        let base = m.fault_zero_fill();
        let pct = overhead.as_ns() as f64 / base.as_ns() as f64 * 100.0;
        assert!(pct > 0.5 && pct < 3.0, "per-fault overhead {pct:.2}%");
    }

    #[test]
    fn serde_round_trip() {
        let m = CostModel::modern();
        let json = serde_json::to_string(&m).expect("serialize");
        let back: CostModel = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.null_ipc, m.null_ipc);
        assert_eq!(back.cmd_fetch_decode, m.cmd_fetch_decode);
    }
}

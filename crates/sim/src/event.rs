//! A deterministic discrete-event queue.
//!
//! Events are ordered by firing time; events scheduled for the same instant
//! fire in the order they were scheduled (FIFO tie-break via a sequence
//! number). This makes every simulation in the workspace reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A handle that identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
    cancelled: bool,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue keyed by [`SimTime`].
///
/// Cancellation is lazy: [`EventQueue::cancel`] marks the event and it is
/// discarded when it reaches the head of the heap.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers still pending in the heap (not popped, not
    /// cancelled). Source of truth for liveness.
    pending: std::collections::HashSet<u64>,
    /// Cancelled-but-not-yet-skipped heap entries.
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedules `payload` to fire at `at`; returns a cancellation handle.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            payload,
            cancelled: false,
        });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns true if the event was
    /// still pending (a popped or already-cancelled event returns false).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Returns the firing time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next live event, returning its firing time and payload.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        self.heap.pop().map(|e| {
            self.pending.remove(&e.seq);
            (e.at, e.payload)
        })
    }

    /// Pops the next event only if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    fn skip_cancelled(&mut self) {
        while let Some(head) = self.heap.peek() {
            if head.cancelled || self.cancelled.contains(&head.seq) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.seq);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), "a");
        q.schedule(SimTime::from_ns(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(100), "later");
        assert!(q.pop_due(SimTime::from_ns(50)).is_none());
        assert_eq!(
            q.pop_due(SimTime::from_ns(100)).map(|(_, e)| e),
            Some("later")
        );
    }

    #[test]
    fn cancel_after_pop_is_a_no_op() {
        // Regression: cancelling an already-delivered event must not
        // succeed or corrupt the live count.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), "a");
        q.schedule(SimTime::from_ns(2), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert!(!q.cancel(a), "event already fired");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), "a");
        q.schedule(SimTime::from_ns(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
    }
}

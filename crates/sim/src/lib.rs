//! Simulation substrate for the HiPEC reproduction.
//!
//! This crate provides the deterministic foundations every other crate in the
//! workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual nanosecond clock domain.
//! * [`VirtualClock`] — the single monotonic clock a simulated kernel owns.
//! * [`EventQueue`] — a deterministic discrete-event queue (FIFO tie-break).
//! * [`DetRng`] — a seedable RNG with the distributions the workloads need.
//! * [`CostModel`] — virtual-time cost constants, calibrated against the
//!   measurements published in the HiPEC paper (OSDI '94, Tables 3 and 4).
//! * [`stats`] — counters, online moments, histograms and series used by the
//!   experiment harnesses.
//! * [`hist`] — fixed-footprint log-linear latency histograms with the
//!   merge/diff algebra the observability layer's snapshots need.
//!
//! Everything here is pure computation: no wall-clock reads, no I/O, no
//! threads. Simulations are bit-reproducible given the same seed.

pub mod clock;
pub mod cost;
pub mod event;
pub mod hist;
pub mod rng;
pub mod stats;
pub mod time;

pub use clock::VirtualClock;
pub use cost::CostModel;
pub use event::EventQueue;
pub use hist::LatencyHistogram;
pub use rng::{DetRng, ZipfTable};
pub use time::{SimDuration, SimTime};

//! The mechanical disk service-time model.

use hipec_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A logical page-sized block address on the paging device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lba(pub u64);

/// Geometry and timing parameters of the modelled drive.
///
/// The default, [`DiskParams::paper_scsi`], is tuned so that the paging
/// pattern of the paper's Table 3 (sequential page-in with ≈ 400 µs of fault
/// handling between transfers) averages ≈ 7.7 ms per page, reproducing the
/// paper's 8.06 ms per fault-with-I/O.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskParams {
    /// Full platter revolution time.
    pub revolution: SimDuration,
    /// Page-sized slots per track.
    pub pages_per_track: u64,
    /// Logical-to-physical in-track slot interleave factor. Must be coprime
    /// with `pages_per_track` so every slot is used.
    pub interleave: u64,
    /// Number of cylinders (one track per cylinder in this model).
    pub cylinders: u64,
    /// Fixed controller/command overhead per request.
    pub overhead: SimDuration,
    /// Adjacent-cylinder (track-to-track) seek time.
    pub seek_track: SimDuration,
    /// Constant portion of a longer seek.
    pub seek_base: SimDuration,
    /// Coefficient of the √distance seek term, in nanoseconds per √cylinder.
    pub seek_sqrt_ns: u64,
}

impl DiskParams {
    /// A 1994-class SCSI paging disk (5400 RPM, 16 KB tracks, interleave 3).
    pub fn paper_scsi() -> Self {
        DiskParams {
            revolution: SimDuration::from_us(11_111), // 5400 RPM
            pages_per_track: 4,                       // 4 × 4 KB pages per track
            interleave: 3,
            cylinders: 65_536, // 1 GB paging device
            overhead: SimDuration::from_us(300),
            seek_track: SimDuration::from_us(1_000),
            seek_base: SimDuration::from_us(2_000),
            seek_sqrt_ns: 110_000, // 0.11 ms · √distance (≈ 30 ms full stroke)
        }
    }

    /// Duration of one page transfer (one slot passing under the head).
    pub fn transfer(&self) -> SimDuration {
        self.revolution / self.pages_per_track
    }

    /// Seek time for a cylinder distance (zero distance is free).
    pub fn seek(&self, distance: u64) -> SimDuration {
        match distance {
            0 => SimDuration::ZERO,
            1 => self.seek_track,
            d => self.seek_base + SimDuration::from_ns(self.seek_sqrt_ns * isqrt(d)),
        }
    }

    /// Total page capacity of the device.
    pub fn capacity_pages(&self) -> u64 {
        self.cylinders * self.pages_per_track
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams::paper_scsi()
    }
}

/// Integer square root (floor).
fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = (n as f64).sqrt() as u64;
    // Correct the float estimate in both directions.
    while x.saturating_mul(x) > n {
        x -= 1;
    }
    while (x + 1).saturating_mul(x + 1) <= n {
        x += 1;
    }
    x
}

/// Running statistics the experiments read back from the device.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskStats {
    /// Total requests serviced.
    pub requests: u64,
    /// Requests that were reads.
    pub reads: u64,
    /// Requests that were writes.
    pub writes: u64,
    /// Total device busy time.
    pub busy: SimDuration,
}

/// The disk device: current head position, platter phase and busy horizon.
#[derive(Debug, Clone)]
pub struct DiskModel {
    params: DiskParams,
    head_cylinder: u64,
    busy_until: SimTime,
    stats: DiskStats,
}

impl DiskModel {
    /// Creates a drive with the head parked at cylinder 0.
    pub fn new(params: DiskParams) -> Self {
        DiskModel {
            head_cylinder: 0,
            busy_until: SimTime::ZERO,
            params,
            stats: DiskStats::default(),
        }
    }

    /// The drive's parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// The instant the device becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Current head cylinder (for SSTF scheduling).
    pub fn head_cylinder(&self) -> u64 {
        self.head_cylinder
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Cylinder that holds `lba` (for queue scheduling decisions).
    pub fn cylinder_of(&self, lba: Lba) -> u64 {
        (lba.0 / self.params.pages_per_track) % self.params.cylinders
    }

    /// Physical in-track slot of `lba` after interleaving.
    fn slot_of(&self, lba: Lba) -> u64 {
        let logical = lba.0 % self.params.pages_per_track;
        (logical * self.params.interleave) % self.params.pages_per_track
    }

    /// Services a page read at `lba` submitted at `now`; returns completion.
    pub fn read(&mut self, lba: Lba, now: SimTime) -> SimTime {
        self.stats.reads += 1;
        self.access(lba, now)
    }

    /// Services a page write at `lba` submitted at `now`; returns completion.
    pub fn write(&mut self, lba: Lba, now: SimTime) -> SimTime {
        self.stats.writes += 1;
        self.access(lba, now)
    }

    fn access(&mut self, lba: Lba, now: SimTime) -> SimTime {
        let start = self.busy_until.max(now);
        let cyl = self.cylinder_of(lba);
        let distance = cyl.abs_diff(self.head_cylinder);
        let positioned = start + self.params.overhead + self.params.seek(distance);

        // Rotational wait: the platter angle is phase-locked to virtual time.
        let rev_ns = self.params.revolution.as_ns();
        let slot_len = self.params.transfer().as_ns();
        let target_angle_ns = self.slot_of(lba) * slot_len;
        let angle_ns = positioned.as_ns() % rev_ns;
        let wait_ns = (target_angle_ns + rev_ns - angle_ns) % rev_ns;

        let completion = positioned + SimDuration::from_ns(wait_ns) + self.params.transfer();
        self.head_cylinder = cyl;
        self.stats.requests += 1;
        self.stats.busy += completion.since(start);
        self.busy_until = completion;
        completion
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel::new(DiskParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_is_exact() {
        for n in 0..2_000u64 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
    }

    #[test]
    fn interleave_is_coprime_in_default_geometry() {
        let p = DiskParams::default();
        let mut seen = vec![false; p.pages_per_track as usize];
        for i in 0..p.pages_per_track {
            seen[((i * p.interleave) % p.pages_per_track) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "interleave must cover all slots");
    }

    #[test]
    fn zero_distance_seek_is_free() {
        let p = DiskParams::default();
        assert_eq!(p.seek(0), SimDuration::ZERO);
        assert_eq!(p.seek(1), p.seek_track);
        assert!(p.seek(100) > p.seek(1));
    }

    #[test]
    fn completion_is_after_submission_and_monotonic() {
        let mut d = DiskModel::default();
        let mut t = SimTime::ZERO;
        for i in 0..50 {
            let done = d.read(Lba(i * 37 % 500), t);
            assert!(done > t);
            assert_eq!(d.busy_until(), done);
            t = done;
        }
        assert_eq!(d.stats().requests, 50);
        assert_eq!(d.stats().reads, 50);
    }

    #[test]
    fn queued_requests_serialize_on_the_device() {
        let mut d = DiskModel::default();
        // Submit two requests at the same instant: the second must start
        // after the first completes.
        let first = d.read(Lba(0), SimTime::ZERO);
        let second = d.read(Lba(1000), SimTime::ZERO);
        assert!(second > first);
    }

    #[test]
    fn sequential_pagein_with_fault_gap_matches_paper_calibration() {
        // Replays the Table 3 with-I/O pattern: 10 240 sequential page-ins
        // with ≈ 392 µs of fault handling between them. The paper measures
        // 82 485.5 ms / 10 240 = 8.06 ms per fault; the device share must
        // land near 7.7 ms per page.
        let mut d = DiskModel::default();
        let gap = SimDuration::from_us(392);
        let mut now = SimTime::ZERO;
        let n = 10_240u64;
        let mut device_total = SimDuration::ZERO;
        for i in 0..n {
            let done = d.read(Lba(i), now);
            device_total += done.since(now);
            now = done + gap;
        }
        let avg_ms = device_total.as_ms_f64() / n as f64;
        assert!(
            (6.5..9.0).contains(&avg_ms),
            "average page-in {avg_ms:.2} ms is outside the calibration band"
        );
    }

    #[test]
    fn writes_counted_separately() {
        let mut d = DiskModel::default();
        d.write(Lba(3), SimTime::ZERO);
        let s = d.stats();
        assert_eq!((s.reads, s.writes), (0, 1));
    }

    #[test]
    fn capacity_and_cylinder_mapping() {
        let p = DiskParams::default();
        let d = DiskModel::new(p.clone());
        assert_eq!(p.capacity_pages(), p.cylinders * p.pages_per_track);
        assert_eq!(d.cylinder_of(Lba(0)), 0);
        assert_eq!(d.cylinder_of(Lba(p.pages_per_track)), 1);
    }
}

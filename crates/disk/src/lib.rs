//! A mechanical disk model and paging backing store.
//!
//! The HiPEC paper's elapsed-time results are dominated by paging I/O on a
//! 1994 SCSI disk. This crate models such a disk in the style of Ruemmler &
//! Wilkes ("An Introduction to Disk Drive Modeling", IEEE Computer 1994 —
//! the paper's reference \[26\]):
//!
//! * a seek-time curve (`a + b·√distance` for the cylinder distance),
//! * true rotational position tracking (the platter angle is a function of
//!   virtual time, so sequential access patterns see realistic rotational
//!   misses), with sector interleaving as 1990s paging partitions used,
//! * per-track page slots and a transfer time proportional to rotation.
//!
//! [`DiskModel`] answers "when does this page transfer complete?" for a
//! logical block at a given submission time. [`BackingStore`] maps (memory
//! object, page offset) pairs onto logical blocks. [`DiskQueue`] provides
//! FCFS and SSTF request ordering for the asynchronous flush daemon.
//!
//! [`FaultPlan`] optionally injects read/write errors, delayed completions
//! and torn writes from a seeded decision stream, so failure handling can be
//! tested reproducibly.
//!
//! Everything is deterministic: no wall clock, and the only randomness is
//! the seeded fault stream.

pub mod backing;
pub mod device;
pub mod fault;
pub mod flash;
pub mod model;
pub mod queue;

pub use backing::{BackingStore, PageLocation};
pub use device::{DeviceParams, DeviceStats, PagingDevice, WriteCompletion};
pub use fault::{
    Burst, DiskFault, FaultConfig, FaultPhase, FaultPlan, InjectedFault, PhasedFaultConfig,
};
pub use flash::{FlashModel, FlashParams};
pub use model::{DiskModel, DiskParams, Lba};
pub use queue::{DiskQueue, QueueDiscipline};

//! Deterministic fault injection for the paging device.
//!
//! A [`FaultPlan`] sits between the kernel and the device models, deciding —
//! from a seed and an operation counter, nothing else — whether each read or
//! write errors, completes late, or (writes only) completes *torn* and must
//! be re-issued. Because every decision is a pure function of
//! `(seed, operation index)`, the same seed always produces the same failure
//! trace regardless of wall-clock or allocator behaviour, so failing
//! schedules replay exactly.
//!
//! The plan records every injected fault in a [trace](FaultPlan::trace);
//! tests compare traces across runs to assert determinism.

use hipec_sim::SimDuration;

use crate::model::Lba;

/// Injection rates and magnitudes. All rates are per-mille (0–1000).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Probability a read fails outright.
    pub read_error_permille: u16,
    /// Probability a write fails outright (reported at submission).
    pub write_error_permille: u16,
    /// Probability a completion is delayed by up to `max_delay`.
    pub delay_permille: u16,
    /// Upper bound of an injected completion delay.
    pub max_delay: SimDuration,
    /// Probability an accepted write completes torn (the caller must
    /// re-issue it when the completion is reaped).
    pub torn_permille: u16,
}

impl FaultConfig {
    /// A plan that injects nothing (useful as a trace-only probe).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error_permille: 0,
            write_error_permille: 0,
            delay_permille: 0,
            max_delay: SimDuration::ZERO,
            torn_permille: 0,
        }
    }
}

/// A device-level failure surfaced to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The device could not read the block.
    ReadError(Lba),
    /// The device rejected the write.
    WriteError(Lba),
}

impl std::fmt::Display for DiskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskFault::ReadError(lba) => write!(f, "read error at block {}", lba.0),
            DiskFault::WriteError(lba) => write!(f, "write error at block {}", lba.0),
        }
    }
}

impl std::error::Error for DiskFault {}

/// One entry of the injected-fault trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Operation `op` (a read of `lba`) errored.
    ReadError {
        /// Operation index.
        op: u64,
        /// Target block.
        lba: Lba,
    },
    /// Operation `op` (a write of `lba`) errored.
    WriteError {
        /// Operation index.
        op: u64,
        /// Target block.
        lba: Lba,
    },
    /// Operation `op` completed `extra` late.
    Delay {
        /// Operation index.
        op: u64,
        /// Target block.
        lba: Lba,
        /// Injected extra latency.
        extra: SimDuration,
    },
    /// Operation `op` (a write of `lba`) completed torn.
    Torn {
        /// Operation index.
        op: u64,
        /// Target block.
        lba: Lba,
    },
}

/// What the plan decided for one read.
#[derive(Debug, Clone, Copy)]
pub struct ReadDecision {
    /// The read fails.
    pub error: bool,
    /// Extra completion latency (zero when no delay was injected).
    pub extra_delay: SimDuration,
}

/// What the plan decided for one write.
#[derive(Debug, Clone, Copy)]
pub struct WriteDecision {
    /// The write is rejected at submission.
    pub error: bool,
    /// Extra completion latency.
    pub extra_delay: SimDuration,
    /// The write completes torn and must be re-issued.
    pub torn: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, replayable schedule of device faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    op: u64,
    trace: Vec<InjectedFault>,
}

impl FaultPlan {
    /// Creates the plan.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            op: 0,
            trace: Vec::new(),
        }
    }

    /// The configuration this plan runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Every fault injected so far, in operation order.
    pub fn trace(&self) -> &[InjectedFault] {
        &self.trace
    }

    /// Operations decided so far (faulty or not).
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// Three decision draws for the current operation. Each operation
    /// consumes its own splitmix64 stream keyed by `(seed, op)`, so the
    /// decision depends only on the operation's ordinal — never on how
    /// earlier decisions branched.
    fn draws(&self) -> [u64; 3] {
        let mut s = self
            .cfg
            .seed
            .wrapping_add(self.op.wrapping_mul(0xA076_1D64_78BD_642F));
        [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)]
    }

    fn hit(draw: u64, permille: u16) -> bool {
        (draw % 1000) < u64::from(permille.min(1000))
    }

    fn delay_from(&self, draw: u64) -> SimDuration {
        let ns = self.cfg.max_delay.as_ns();
        if ns == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_ns(draw % (ns + 1))
    }

    /// Decides the fate of the next read.
    pub fn on_read(&mut self, lba: Lba) -> ReadDecision {
        let [d_err, d_delay, d_amount] = self.draws();
        let op = self.op;
        self.op += 1;
        if Self::hit(d_err, self.cfg.read_error_permille) {
            self.trace.push(InjectedFault::ReadError { op, lba });
            return ReadDecision {
                error: true,
                extra_delay: SimDuration::ZERO,
            };
        }
        let extra = if Self::hit(d_delay, self.cfg.delay_permille) {
            let extra = self.delay_from(d_amount);
            self.trace.push(InjectedFault::Delay { op, lba, extra });
            extra
        } else {
            SimDuration::ZERO
        };
        ReadDecision {
            error: false,
            extra_delay: extra,
        }
    }

    /// Decides the fate of the next write.
    pub fn on_write(&mut self, lba: Lba) -> WriteDecision {
        let [d_err, d_delay, d_amount] = self.draws();
        let op = self.op;
        self.op += 1;
        if Self::hit(d_err, self.cfg.write_error_permille) {
            self.trace.push(InjectedFault::WriteError { op, lba });
            return WriteDecision {
                error: true,
                extra_delay: SimDuration::ZERO,
                torn: false,
            };
        }
        let extra = if Self::hit(d_delay, self.cfg.delay_permille) {
            let extra = self.delay_from(d_amount);
            self.trace.push(InjectedFault::Delay { op, lba, extra });
            extra
        } else {
            SimDuration::ZERO
        };
        // The torn draw reuses the error draw's high bits: the two outcomes
        // are mutually exclusive, and keeping three draws per op keeps the
        // stream layout identical for reads and writes.
        let torn = Self::hit(d_err >> 32, self.cfg.torn_permille);
        if torn {
            self.trace.push(InjectedFault::Torn { op, lba });
        }
        WriteDecision {
            error: false,
            extra_delay: extra,
            torn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            read_error_permille: 100,
            write_error_permille: 100,
            delay_permille: 200,
            max_delay: SimDuration::from_ms(5),
            torn_permille: 150,
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let mut a = FaultPlan::new(noisy(42));
        let mut b = FaultPlan::new(noisy(42));
        for i in 0..500u64 {
            if i % 3 == 0 {
                a.on_read(Lba(i));
                b.on_read(Lba(i));
            } else {
                a.on_write(Lba(i));
                b.on_write(Lba(i));
            }
        }
        assert!(!a.trace().is_empty(), "noisy config must inject something");
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::new(noisy(1));
        let mut b = FaultPlan::new(noisy(2));
        for i in 0..500u64 {
            a.on_write(Lba(i));
            b.on_write(Lba(i));
        }
        assert_ne!(a.trace(), b.trace());
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let mut p = FaultPlan::new(FaultConfig::quiet(7));
        for i in 0..200u64 {
            let r = p.on_read(Lba(i));
            assert!(!r.error);
            assert_eq!(r.extra_delay.as_ns(), 0);
            let w = p.on_write(Lba(i));
            assert!(!w.error && !w.torn);
        }
        assert!(p.trace().is_empty());
        assert_eq!(p.ops(), 400);
    }

    #[test]
    fn rates_are_respected_roughly() {
        let mut p = FaultPlan::new(noisy(9));
        let mut errors = 0;
        for i in 0..10_000u64 {
            if p.on_read(Lba(i)).error {
                errors += 1;
            }
        }
        // 10% nominal; allow a generous band.
        assert!((500..2000).contains(&errors), "got {errors} errors");
    }

    #[test]
    fn delays_are_bounded() {
        let mut p = FaultPlan::new(noisy(11));
        for i in 0..2000u64 {
            let d = p.on_read(Lba(i));
            assert!(d.extra_delay <= SimDuration::from_ms(5));
        }
    }
}

//! Deterministic fault injection for the paging device.
//!
//! A [`FaultPlan`] sits between the kernel and the device models, deciding —
//! from a seed and an operation counter, nothing else — whether each read or
//! write errors, completes late, or (writes only) completes *torn* and must
//! be re-issued. Because every decision is a pure function of
//! `(seed, operation index)`, the same seed always produces the same failure
//! trace regardless of wall-clock or allocator behaviour, so failing
//! schedules replay exactly.
//!
//! The plan records every injected fault in a [trace](FaultPlan::trace);
//! tests compare traces across runs to assert determinism.

use hipec_sim::SimDuration;

use crate::model::Lba;

/// Injection rates and magnitudes. All rates are per-mille (0–1000).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Probability a read fails outright.
    pub read_error_permille: u16,
    /// Probability a write fails outright (reported at submission).
    pub write_error_permille: u16,
    /// Probability a completion is delayed by up to `max_delay`.
    pub delay_permille: u16,
    /// Upper bound of an injected completion delay.
    pub max_delay: SimDuration,
    /// Probability an accepted write completes torn (the caller must
    /// re-issue it when the completion is reaped).
    pub torn_permille: u16,
}

impl FaultConfig {
    /// A plan that injects nothing (useful as a trace-only probe).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error_permille: 0,
            write_error_permille: 0,
            delay_permille: 0,
            max_delay: SimDuration::ZERO,
            torn_permille: 0,
        }
    }
}

/// A duty cycle within a phase: faults fire only during the first `active`
/// operations of every `period`-operation cycle. Models bursty media that
/// alternates between misbehaving and healthy stretches faster than the
/// phase granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Cycle length in operations (≥ 1; 0 is treated as 1).
    pub period: u64,
    /// Operations at the head of each cycle during which the phase's rates
    /// apply; outside this window the phase injects nothing.
    pub active: u64,
}

/// One time window of a [`PhasedFaultConfig`], measured in device
/// operations (not virtual time — operation count is what the decision
/// stream is keyed on, which keeps phases pure in `(seed, op index)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPhase {
    /// Number of operations this phase covers. The ops after the last
    /// phase are quiet.
    pub ops: u64,
    /// Probability a read fails outright (per-mille).
    pub read_error_permille: u16,
    /// Probability a write fails outright (per-mille).
    pub write_error_permille: u16,
    /// Probability a completion is delayed (per-mille).
    pub delay_permille: u16,
    /// Upper bound of an injected completion delay.
    pub max_delay: SimDuration,
    /// Probability an accepted write completes torn (per-mille).
    pub torn_permille: u16,
    /// Optional duty cycle gating the rates above.
    pub burst: Option<Burst>,
    /// A block that errors deterministically on every access for the whole
    /// phase (reads and writes alike), independent of `burst`.
    pub stuck_lba: Option<Lba>,
}

impl FaultPhase {
    /// A phase that injects nothing for `ops` operations.
    pub fn quiet(ops: u64) -> Self {
        FaultPhase {
            ops,
            read_error_permille: 0,
            write_error_permille: 0,
            delay_permille: 0,
            max_delay: SimDuration::ZERO,
            torn_permille: 0,
            burst: None,
            stuck_lba: None,
        }
    }

    /// A worst-case phase: every accepted write completes torn and every
    /// completion is delayed by up to `max_delay`. This is ROADMAP open
    /// item 1's all-torn-and-delayed device.
    pub fn torn_delayed(ops: u64, max_delay: SimDuration) -> Self {
        FaultPhase {
            ops,
            read_error_permille: 0,
            write_error_permille: 0,
            delay_permille: 1000,
            max_delay,
            torn_permille: 1000,
            burst: None,
            stuck_lba: None,
        }
    }
}

/// A schedule of fault phases applied in sequence by operation index.
/// Like [`FaultConfig`], every decision stays a pure function of
/// `(seed, op index)`: the phase is looked up from the op's ordinal, and
/// each op's draws are keyed independently, so phased plans replay exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhasedFaultConfig {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Phases applied back-to-back; operations past the last are quiet.
    pub phases: Vec<FaultPhase>,
}

/// Effective injection rates for one operation (flat config or the phase
/// covering that op, after burst gating).
#[derive(Debug, Clone, Copy)]
struct Rates {
    read_error_permille: u16,
    write_error_permille: u16,
    delay_permille: u16,
    max_delay: SimDuration,
    torn_permille: u16,
    stuck_lba: Option<Lba>,
}

impl Rates {
    fn quiet() -> Self {
        Rates {
            read_error_permille: 0,
            write_error_permille: 0,
            delay_permille: 0,
            max_delay: SimDuration::ZERO,
            torn_permille: 0,
            stuck_lba: None,
        }
    }

    fn from_config(cfg: &FaultConfig) -> Self {
        Rates {
            read_error_permille: cfg.read_error_permille,
            write_error_permille: cfg.write_error_permille,
            delay_permille: cfg.delay_permille,
            max_delay: cfg.max_delay,
            torn_permille: cfg.torn_permille,
            stuck_lba: None,
        }
    }

    fn from_phase(ph: &FaultPhase, offset_in_phase: u64) -> Self {
        let mut r = Rates {
            read_error_permille: ph.read_error_permille,
            write_error_permille: ph.write_error_permille,
            delay_permille: ph.delay_permille,
            max_delay: ph.max_delay,
            torn_permille: ph.torn_permille,
            stuck_lba: ph.stuck_lba,
        };
        if let Some(b) = ph.burst {
            let pos = offset_in_phase % b.period.max(1);
            if pos >= b.active {
                // Outside the duty window the phase is quiet — except for a
                // stuck block, which is a media defect, not a rate.
                r.read_error_permille = 0;
                r.write_error_permille = 0;
                r.delay_permille = 0;
                r.torn_permille = 0;
            }
        }
        r
    }
}

/// A device-level failure surfaced to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The device could not read the block.
    ReadError(Lba),
    /// The device rejected the write.
    WriteError(Lba),
}

impl std::fmt::Display for DiskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskFault::ReadError(lba) => write!(f, "read error at block {}", lba.0),
            DiskFault::WriteError(lba) => write!(f, "write error at block {}", lba.0),
        }
    }
}

impl std::error::Error for DiskFault {}

/// One entry of the injected-fault trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Operation `op` (a read of `lba`) errored.
    ReadError {
        /// Operation index.
        op: u64,
        /// Target block.
        lba: Lba,
    },
    /// Operation `op` (a write of `lba`) errored.
    WriteError {
        /// Operation index.
        op: u64,
        /// Target block.
        lba: Lba,
    },
    /// Operation `op` completed `extra` late.
    Delay {
        /// Operation index.
        op: u64,
        /// Target block.
        lba: Lba,
        /// Injected extra latency.
        extra: SimDuration,
    },
    /// Operation `op` (a write of `lba`) completed torn.
    Torn {
        /// Operation index.
        op: u64,
        /// Target block.
        lba: Lba,
    },
}

/// What the plan decided for one read.
#[derive(Debug, Clone, Copy)]
pub struct ReadDecision {
    /// The read fails.
    pub error: bool,
    /// Extra completion latency (zero when no delay was injected).
    pub extra_delay: SimDuration,
}

/// What the plan decided for one write.
#[derive(Debug, Clone, Copy)]
pub struct WriteDecision {
    /// The write is rejected at submission.
    pub error: bool,
    /// Extra completion latency.
    pub extra_delay: SimDuration,
    /// The write completes torn and must be re-issued.
    pub torn: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, replayable schedule of device faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Non-empty for phased plans; `cfg` then only carries the seed.
    phases: Vec<FaultPhase>,
    op: u64,
    trace: Vec<InjectedFault>,
}

impl FaultPlan {
    /// Creates the plan.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            phases: Vec::new(),
            op: 0,
            trace: Vec::new(),
        }
    }

    /// Creates a plan that walks `cfg.phases` in operation order.
    pub fn phased(cfg: PhasedFaultConfig) -> Self {
        FaultPlan {
            cfg: FaultConfig::quiet(cfg.seed),
            phases: cfg.phases,
            op: 0,
            trace: Vec::new(),
        }
    }

    /// The configuration this plan runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The phase schedule (empty for flat plans).
    pub fn phases(&self) -> &[FaultPhase] {
        &self.phases
    }

    /// Every fault injected so far, in operation order.
    pub fn trace(&self) -> &[InjectedFault] {
        &self.trace
    }

    /// Operations decided so far (faulty or not).
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// Three decision draws for the current operation. Each operation
    /// consumes its own splitmix64 stream keyed by `(seed, op)`, so the
    /// decision depends only on the operation's ordinal — never on how
    /// earlier decisions branched.
    fn draws(&self) -> [u64; 3] {
        let mut s = self
            .cfg
            .seed
            .wrapping_add(self.op.wrapping_mul(0xA076_1D64_78BD_642F));
        [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)]
    }

    fn hit(draw: u64, permille: u16) -> bool {
        (draw % 1000) < u64::from(permille.min(1000))
    }

    fn delay_from(draw: u64, max_delay: SimDuration) -> SimDuration {
        let ns = max_delay.as_ns();
        if ns == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_ns(draw % (ns + 1))
    }

    /// Rates in effect for operation `op` — the flat config, or the phase
    /// whose window covers `op` (quiet past the last phase).
    fn rates_for(&self, op: u64) -> Rates {
        if self.phases.is_empty() {
            return Rates::from_config(&self.cfg);
        }
        let mut start = 0u64;
        for ph in &self.phases {
            let end = start.saturating_add(ph.ops);
            if op < end {
                return Rates::from_phase(ph, op - start);
            }
            start = end;
        }
        Rates::quiet()
    }

    /// Decides the fate of the next read.
    pub fn on_read(&mut self, lba: Lba) -> ReadDecision {
        let [d_err, d_delay, d_amount] = self.draws();
        let op = self.op;
        self.op += 1;
        let rates = self.rates_for(op);
        if rates.stuck_lba == Some(lba) || Self::hit(d_err, rates.read_error_permille) {
            self.trace.push(InjectedFault::ReadError { op, lba });
            return ReadDecision {
                error: true,
                extra_delay: SimDuration::ZERO,
            };
        }
        let extra = if Self::hit(d_delay, rates.delay_permille) {
            let extra = Self::delay_from(d_amount, rates.max_delay);
            self.trace.push(InjectedFault::Delay { op, lba, extra });
            extra
        } else {
            SimDuration::ZERO
        };
        ReadDecision {
            error: false,
            extra_delay: extra,
        }
    }

    /// Decides the fate of the next write.
    pub fn on_write(&mut self, lba: Lba) -> WriteDecision {
        let [d_err, d_delay, d_amount] = self.draws();
        let op = self.op;
        self.op += 1;
        let rates = self.rates_for(op);
        if rates.stuck_lba == Some(lba) || Self::hit(d_err, rates.write_error_permille) {
            self.trace.push(InjectedFault::WriteError { op, lba });
            return WriteDecision {
                error: true,
                extra_delay: SimDuration::ZERO,
                torn: false,
            };
        }
        let extra = if Self::hit(d_delay, rates.delay_permille) {
            let extra = Self::delay_from(d_amount, rates.max_delay);
            self.trace.push(InjectedFault::Delay { op, lba, extra });
            extra
        } else {
            SimDuration::ZERO
        };
        // The torn draw reuses the error draw's high bits: the two outcomes
        // are mutually exclusive, and keeping three draws per op keeps the
        // stream layout identical for reads and writes.
        let torn = Self::hit(d_err >> 32, rates.torn_permille);
        if torn {
            self.trace.push(InjectedFault::Torn { op, lba });
        }
        WriteDecision {
            error: false,
            extra_delay: extra,
            torn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            read_error_permille: 100,
            write_error_permille: 100,
            delay_permille: 200,
            max_delay: SimDuration::from_ms(5),
            torn_permille: 150,
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let mut a = FaultPlan::new(noisy(42));
        let mut b = FaultPlan::new(noisy(42));
        for i in 0..500u64 {
            if i % 3 == 0 {
                a.on_read(Lba(i));
                b.on_read(Lba(i));
            } else {
                a.on_write(Lba(i));
                b.on_write(Lba(i));
            }
        }
        assert!(!a.trace().is_empty(), "noisy config must inject something");
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::new(noisy(1));
        let mut b = FaultPlan::new(noisy(2));
        for i in 0..500u64 {
            a.on_write(Lba(i));
            b.on_write(Lba(i));
        }
        assert_ne!(a.trace(), b.trace());
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let mut p = FaultPlan::new(FaultConfig::quiet(7));
        for i in 0..200u64 {
            let r = p.on_read(Lba(i));
            assert!(!r.error);
            assert_eq!(r.extra_delay.as_ns(), 0);
            let w = p.on_write(Lba(i));
            assert!(!w.error && !w.torn);
        }
        assert!(p.trace().is_empty());
        assert_eq!(p.ops(), 400);
    }

    #[test]
    fn rates_are_respected_roughly() {
        let mut p = FaultPlan::new(noisy(9));
        let mut errors = 0;
        for i in 0..10_000u64 {
            if p.on_read(Lba(i)).error {
                errors += 1;
            }
        }
        // 10% nominal; allow a generous band.
        assert!((500..2000).contains(&errors), "got {errors} errors");
    }

    #[test]
    fn delays_are_bounded() {
        let mut p = FaultPlan::new(noisy(11));
        for i in 0..2000u64 {
            let d = p.on_read(Lba(i));
            assert!(d.extra_delay <= SimDuration::from_ms(5));
        }
    }

    #[test]
    fn phases_switch_at_operation_boundaries() {
        // quiet(100) → all-torn(50) → quiet thereafter.
        let mut p = FaultPlan::phased(PhasedFaultConfig {
            seed: 3,
            phases: vec![
                FaultPhase::quiet(100),
                FaultPhase::torn_delayed(50, SimDuration::from_ms(1)),
            ],
        });
        for i in 0..300u64 {
            let w = p.on_write(Lba(i));
            let in_storm = (100..150).contains(&i);
            assert_eq!(w.torn, in_storm, "op {i}");
            assert!(!w.error);
            if !in_storm {
                assert_eq!(w.extra_delay.as_ns(), 0, "op {i}");
            }
        }
    }

    #[test]
    fn phased_plans_replay_exactly() {
        let cfg = PhasedFaultConfig {
            seed: 77,
            phases: vec![
                FaultPhase::quiet(20),
                FaultPhase {
                    burst: Some(Burst {
                        period: 10,
                        active: 3,
                    }),
                    stuck_lba: Some(Lba(5)),
                    ..FaultPhase::torn_delayed(200, SimDuration::from_us(700))
                },
                FaultPhase::quiet(50),
            ],
        };
        let mut a = FaultPlan::phased(cfg.clone());
        let mut b = FaultPlan::phased(cfg);
        for i in 0..400u64 {
            if i % 4 == 0 {
                a.on_read(Lba(i % 16));
                b.on_read(Lba(i % 16));
            } else {
                a.on_write(Lba(i % 16));
                b.on_write(Lba(i % 16));
            }
        }
        assert!(!a.trace().is_empty());
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn burst_gates_the_duty_cycle() {
        // 100% torn, but only in the first 2 ops of every 8-op cycle.
        let mut p = FaultPlan::phased(PhasedFaultConfig {
            seed: 5,
            phases: vec![FaultPhase {
                burst: Some(Burst {
                    period: 8,
                    active: 2,
                }),
                ..FaultPhase::torn_delayed(800, SimDuration::ZERO)
            }],
        });
        for i in 0..800u64 {
            let w = p.on_write(Lba(i));
            assert_eq!(w.torn, i % 8 < 2, "op {i}");
        }
    }

    #[test]
    fn stuck_lba_errors_deterministically_even_outside_burst() {
        let mut p = FaultPlan::phased(PhasedFaultConfig {
            seed: 9,
            phases: vec![FaultPhase {
                burst: Some(Burst {
                    period: 100,
                    active: 0,
                }),
                stuck_lba: Some(Lba(7)),
                ..FaultPhase::torn_delayed(1000, SimDuration::ZERO)
            }],
        });
        for i in 0..500u64 {
            let lba = Lba(i % 10);
            let w = p.on_write(lba);
            assert_eq!(w.error, lba == Lba(7), "op {i}");
            let r = p.on_read(lba);
            assert_eq!(r.error, lba == Lba(7), "op {i}");
        }
    }

    #[test]
    fn flat_and_phased_agree_when_rates_match() {
        // A single endless phase with the same rates as a flat config must
        // produce the identical decision stream (the draws are keyed only by
        // (seed, op), never by the plan shape).
        let flat_cfg = noisy(13);
        let mut flat = FaultPlan::new(flat_cfg);
        let mut phased = FaultPlan::phased(PhasedFaultConfig {
            seed: 13,
            phases: vec![FaultPhase {
                ops: u64::MAX,
                read_error_permille: flat_cfg.read_error_permille,
                write_error_permille: flat_cfg.write_error_permille,
                delay_permille: flat_cfg.delay_permille,
                max_delay: flat_cfg.max_delay,
                torn_permille: flat_cfg.torn_permille,
                burst: None,
                stuck_lba: None,
            }],
        });
        for i in 0..500u64 {
            flat.on_write(Lba(i));
            phased.on_write(Lba(i));
        }
        assert_eq!(flat.trace(), phased.trace());
    }
}

//! Request ordering for the asynchronous flush daemon.
//!
//! The global frame manager batches dirty-page writes (paper §4.3.1, "I/O
//! handling"). The order in which the batch is issued to the device matters
//! for throughput; this module provides first-come-first-served and
//! shortest-seek-time-first disciplines.

use crate::model::Lba;

/// How queued requests are picked for service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// First come, first served (submission order).
    #[default]
    Fcfs,
    /// Shortest seek time first relative to the current head cylinder.
    Sstf,
}

/// A pending request with a caller-supplied tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending<T> {
    /// Target block.
    pub lba: Lba,
    /// Caller tag carried through scheduling (e.g. which page to free).
    pub tag: T,
}

/// A disk request queue with a pluggable discipline.
#[derive(Debug, Clone)]
pub struct DiskQueue<T> {
    discipline: QueueDiscipline,
    pending: Vec<Pending<T>>,
    pushes: u64,
    pops: u64,
}

impl<T> DiskQueue<T> {
    /// Creates an empty queue with the given discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        DiskQueue {
            discipline,
            pending: Vec::new(),
            pushes: 0,
            pops: 0,
        }
    }

    /// Appends a request.
    pub fn push(&mut self, lba: Lba, tag: T) {
        self.pushes += 1;
        self.pending.push(Pending { lba, tag });
    }

    /// Prepends a request so FCFS services it before everything already
    /// queued. The degraded flush pump uses this to put a deferred head
    /// back without reordering the rest of the retry stream.
    pub fn push_front(&mut self, lba: Lba, tag: T) {
        self.pushes += 1;
        self.pending.insert(0, Pending { lba, tag });
    }

    /// Cumulative requests appended over the queue's lifetime.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Cumulative requests serviced over the queue's lifetime.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Iterates the pending requests in submission order (inspection only —
    /// the service order is the discipline's business).
    pub fn iter(&self) -> impl Iterator<Item = &Pending<T>> {
        self.pending.iter()
    }

    /// Picks the next request given the head position mapping.
    ///
    /// `cylinder_of` translates an LBA to its cylinder (supplied by the
    /// device model); `head` is the current head cylinder. FCFS ignores both.
    pub fn pop_next(&mut self, head: u64, cylinder_of: impl Fn(Lba) -> u64) -> Option<Pending<T>> {
        if self.pending.is_empty() {
            return None;
        }
        let idx = match self.discipline {
            QueueDiscipline::Fcfs => 0,
            QueueDiscipline::Sstf => self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (cylinder_of(p.lba).abs_diff(head), *i))
                .map(|(i, _)| i)
                .expect("queue checked non-empty"),
        };
        self.pops += 1;
        Some(self.pending.remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyl(l: Lba) -> u64 {
        l.0 / 4
    }

    #[test]
    fn fcfs_preserves_submission_order() {
        let mut q = DiskQueue::new(QueueDiscipline::Fcfs);
        q.push(Lba(40), "a");
        q.push(Lba(0), "b");
        q.push(Lba(80), "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next(0, cyl))
            .map(|p| p.tag)
            .collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn sstf_picks_nearest_cylinder() {
        let mut q = DiskQueue::new(QueueDiscipline::Sstf);
        q.push(Lba(400), "far");
        q.push(Lba(8), "near");
        q.push(Lba(100), "mid");
        let first = q.pop_next(0, cyl).expect("non-empty");
        assert_eq!(first.tag, "near");
        // Head is now at the near request's cylinder.
        let second = q.pop_next(cyl(Lba(8)), cyl).expect("non-empty");
        assert_eq!(second.tag, "mid");
    }

    #[test]
    fn sstf_tie_breaks_by_submission_order() {
        let mut q = DiskQueue::new(QueueDiscipline::Sstf);
        q.push(Lba(16), "first");
        q.push(Lba(16), "second");
        assert_eq!(q.pop_next(0, cyl).map(|p| p.tag), Some("first"));
    }

    #[test]
    fn push_front_is_serviced_first_under_fcfs() {
        let mut q = DiskQueue::new(QueueDiscipline::Fcfs);
        q.push(Lba(1), "a");
        q.push(Lba(2), "b");
        q.push_front(Lba(3), "head");
        assert_eq!(q.pushes(), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next(0, cyl))
            .map(|p| p.tag)
            .collect();
        assert_eq!(order, vec!["head", "a", "b"]);
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: DiskQueue<()> = DiskQueue::new(QueueDiscipline::Fcfs);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop_next(0, cyl).is_none());
    }
}

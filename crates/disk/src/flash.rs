//! A flash (solid-state) paging device — the paper's §6 future-work item:
//! "new hardware architecture, such as flash RAM, can be managed
//! efficiently if each specific application can control the device".
//!
//! The model is a NOR/NAND-style array with the three asymmetric
//! operations of real flash: fast page reads, slow page programs, and
//! block erases. Pages cannot be overwritten in place, so writes go
//! through a minimal log-structured translation layer: each logical page
//! write programs the next free page of an open block and invalidates the
//! old copy; when free blocks run low, garbage collection copies the valid
//! pages out of the dirtiest block and erases it. Erase counts are tracked
//! per block, so experiments can observe wear and write amplification —
//! exactly the device behaviour an application-specific policy can reduce
//! by avoiding dirty evictions.

use hipec_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::model::Lba;

/// Flash geometry and timing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlashParams {
    /// Reading one page.
    pub read_page: SimDuration,
    /// Programming (writing) one erased page.
    pub program_page: SimDuration,
    /// Erasing one block.
    pub erase_block: SimDuration,
    /// Pages per erase block.
    pub pages_per_block: u64,
    /// Number of erase blocks.
    pub blocks: u64,
    /// Logical capacity as a fraction of physical (the rest is
    /// over-provisioning for garbage collection), in percent.
    pub logical_pct: u64,
}

impl FlashParams {
    /// Early-1990s flash card: reads far faster than the paper's disk,
    /// programs slow, erases very slow, small blocks.
    pub fn early_flash_card() -> Self {
        FlashParams {
            read_page: SimDuration::from_us(150),
            program_page: SimDuration::from_us(900),
            erase_block: SimDuration::from_ms(12),
            pages_per_block: 16,
            blocks: 20_480, // 16K pages/block × 20480 = 1.25 GB physical
            logical_pct: 80,
        }
    }

    /// Logical page capacity exposed to the kernel.
    pub fn capacity_pages(&self) -> u64 {
        self.blocks * self.pages_per_block * self.logical_pct / 100
    }

    fn physical_pages(&self) -> u64 {
        self.blocks * self.pages_per_block
    }
}

impl Default for FlashParams {
    fn default() -> Self {
        FlashParams::early_flash_card()
    }
}

/// Running flash statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlashStats {
    /// Page reads serviced.
    pub reads: u64,
    /// Page programs (host writes + GC copies).
    pub programs: u64,
    /// Host-issued writes (excludes GC copies).
    pub host_writes: u64,
    /// Block erases.
    pub erases: u64,
    /// Pages copied by garbage collection.
    pub gc_copies: u64,
}

impl FlashStats {
    /// Write amplification: total programs per host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            self.programs as f64 / self.host_writes as f64
        }
    }
}

const FREE: u32 = u32::MAX;
const INVALID: u32 = u32::MAX - 1;

/// The flash device with its translation layer.
#[derive(Debug, Clone)]
pub struct FlashModel {
    params: FlashParams,
    /// Logical page → physical page (u32::MAX = unmapped).
    l2p: Vec<u32>,
    /// Physical page state: FREE, INVALID, or the logical page stored.
    p2l: Vec<u32>,
    /// Valid-page count per block.
    valid_in_block: Vec<u32>,
    /// Erase count per block (wear).
    erase_count: Vec<u32>,
    /// The block currently being filled and the next page index within it.
    open_block: u64,
    next_in_block: u64,
    /// Blocks that are fully erased and not open.
    free_blocks: Vec<u64>,
    busy_until: SimTime,
    stats: FlashStats,
}

impl FlashModel {
    /// Creates an empty (fully erased) device.
    pub fn new(params: FlashParams) -> Self {
        let phys = params.physical_pages() as usize;
        let blocks = params.blocks as usize;
        FlashModel {
            l2p: vec![u32::MAX; params.capacity_pages() as usize],
            p2l: vec![FREE; phys],
            valid_in_block: vec![0; blocks],
            erase_count: vec![0; blocks],
            open_block: 0,
            next_in_block: 0,
            free_blocks: (1..params.blocks).rev().collect(),
            busy_until: SimTime::ZERO,
            params,
            stats: FlashStats::default(),
        }
    }

    /// Device parameters.
    pub fn params(&self) -> &FlashParams {
        &self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// Maximum block erase count (peak wear).
    pub fn max_wear(&self) -> u32 {
        self.erase_count.iter().copied().max().unwrap_or(0)
    }

    /// The instant the device goes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    fn begin(&mut self, now: SimTime) -> SimTime {
        self.busy_until.max(now)
    }

    /// Reads logical page `lba`; returns the completion instant.
    ///
    /// Unmapped pages (never written) read as erased and still cost one
    /// page read.
    pub fn read(&mut self, lba: Lba, now: SimTime) -> SimTime {
        debug_assert!((lba.0 as usize) < self.l2p.len(), "read past capacity");
        let start = self.begin(now);
        self.stats.reads += 1;
        self.busy_until = start + self.params.read_page;
        self.busy_until
    }

    /// Writes logical page `lba`; returns the completion instant.
    pub fn write(&mut self, lba: Lba, now: SimTime) -> SimTime {
        let mut t = self.begin(now);
        self.stats.host_writes += 1;
        t = self.program(lba.0, t);
        self.busy_until = t;
        t
    }

    fn program(&mut self, logical: u64, mut t: SimTime) -> SimTime {
        if self.next_in_block >= self.params.pages_per_block {
            t = self.open_new_block(t);
        }
        self.program_in_open(logical, t)
    }

    fn open_new_block(&mut self, mut t: SimTime) -> SimTime {
        if self.free_blocks.is_empty() {
            t = self.garbage_collect(t);
        }
        self.open_block = self
            .free_blocks
            .pop()
            .expect("garbage collection frees a block");
        self.next_in_block = 0;
        t
    }

    /// Greedy garbage collection: erase least-valid blocks, relocating
    /// their live pages, until at least one block is completely free.
    ///
    /// Relocation copies may consume the block just erased (the open block
    /// is full when GC starts); over-provisioning (`logical_pct` < 100)
    /// guarantees each round recovers invalid space, so the loop
    /// terminates with a net-free block.
    fn garbage_collect(&mut self, mut t: SimTime) -> SimTime {
        let mut guard = 0;
        while self.free_blocks.is_empty() {
            guard += 1;
            assert!(
                guard <= 2 * self.params.blocks,
                "flash GC cannot make progress: device over-full"
            );
            let victim = (0..self.params.blocks)
                .filter(|&b| b != self.open_block)
                .min_by_key(|&b| self.valid_in_block[b as usize])
                .expect("more than one block exists");
            // Capture the victim's live pages, then erase it. (A real FTL
            // stages through over-provisioned space; the capture models
            // that.)
            let base = victim * self.params.pages_per_block;
            let mut to_move = Vec::new();
            for i in 0..self.params.pages_per_block {
                let phys = (base + i) as usize;
                let logical = self.p2l[phys];
                if logical != FREE && logical != INVALID {
                    to_move.push(logical as u64);
                    // The page is "in transit": unmap it so the relocation
                    // program does not try to invalidate the erased copy.
                    self.l2p[logical as usize] = u32::MAX;
                }
                self.p2l[phys] = FREE;
            }
            self.valid_in_block[victim as usize] = 0;
            self.erase_count[victim as usize] += 1;
            self.stats.erases += 1;
            t += self.params.erase_block;
            self.free_blocks.push(victim);
            // Relocate live pages: into the open block's remaining space,
            // spilling into the freshly erased victim when it fills.
            for logical in to_move {
                self.stats.gc_copies += 1;
                t += self.params.read_page;
                if self.next_in_block >= self.params.pages_per_block {
                    self.open_block = self
                        .free_blocks
                        .pop()
                        .expect("the erased victim is available");
                    self.next_in_block = 0;
                }
                t = self.program_in_open(logical, t);
            }
        }
        t
    }

    /// Programs `logical` into the open block (which must have room),
    /// without triggering block allocation.
    fn program_in_open(&mut self, logical: u64, t: SimTime) -> SimTime {
        debug_assert!(self.next_in_block < self.params.pages_per_block);
        let old = self.l2p[logical as usize];
        if old != u32::MAX {
            let b = old as u64 / self.params.pages_per_block;
            self.p2l[old as usize] = INVALID;
            self.valid_in_block[b as usize] -= 1;
        }
        let phys = self.open_block * self.params.pages_per_block + self.next_in_block;
        self.next_in_block += 1;
        self.p2l[phys as usize] = logical as u32;
        self.l2p[logical as usize] = phys as u32;
        self.valid_in_block[self.open_block as usize] += 1;
        self.stats.programs += 1;
        t + self.params.program_page
    }
}

impl Default for FlashModel {
    fn default() -> Self {
        FlashModel::new(FlashParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FlashModel {
        FlashModel::new(FlashParams {
            read_page: SimDuration::from_us(100),
            program_page: SimDuration::from_us(500),
            erase_block: SimDuration::from_ms(2),
            pages_per_block: 4,
            blocks: 8,
            logical_pct: 75, // 24 logical pages over 32 physical
        })
    }

    #[test]
    fn reads_are_fast_and_writes_slow() {
        let mut f = tiny();
        let r = f.read(Lba(0), SimTime::ZERO);
        assert_eq!(r.as_ns(), 100_000);
        let w = f.write(Lba(0), r);
        assert_eq!(w.since(r), SimDuration::from_us(500));
        assert_eq!(f.stats().reads, 1);
        assert_eq!(f.stats().host_writes, 1);
    }

    #[test]
    fn overwrites_invalidate_and_remap() {
        let mut f = tiny();
        let mut t = SimTime::ZERO;
        for _ in 0..3 {
            t = f.write(Lba(5), t);
        }
        assert_eq!(f.stats().host_writes, 3);
        assert_eq!(f.stats().programs, 3);
        // One live copy, two invalid.
        let valid: u32 = f.valid_in_block.iter().sum();
        assert_eq!(valid, 1);
    }

    #[test]
    fn gc_kicks_in_when_blocks_run_out_and_wear_accrues() {
        let mut f = tiny(); // 32 physical pages
        let mut t = SimTime::ZERO;
        // Hammer a working set of 6 logical pages with 200 writes: far
        // more programs than physical pages, forcing repeated GC.
        for i in 0..200u64 {
            t = f.write(Lba(i % 6), t);
        }
        let s = f.stats();
        assert_eq!(s.host_writes, 200);
        assert!(s.erases > 10, "GC must have erased blocks ({})", s.erases);
        assert!(f.max_wear() >= 2);
        assert!(
            s.write_amplification() >= 1.0,
            "WA {} must be ≥ 1",
            s.write_amplification()
        );
        // Every logical page in the working set still maps somewhere.
        for l in 0..6usize {
            assert_ne!(f.l2p[l], u32::MAX);
        }
    }

    #[test]
    fn sequential_writes_have_unit_write_amplification() {
        let mut f = tiny();
        let mut t = SimTime::ZERO;
        // Write each logical page once: no page is ever invalidated, so GC
        // (if any) finds fully-invalid blocks only — no copies.
        for l in 0..24u64 {
            t = f.write(Lba(l), t);
        }
        let s = f.stats();
        assert_eq!(s.programs, s.host_writes);
        assert_eq!(s.gc_copies, 0);
    }

    #[test]
    fn capacity_reflects_overprovisioning() {
        let p = FlashParams::early_flash_card();
        assert!(p.capacity_pages() < p.blocks * p.pages_per_block);
        assert_eq!(
            p.capacity_pages(),
            p.blocks * p.pages_per_block * p.logical_pct / 100
        );
    }

    #[test]
    fn device_serializes_requests() {
        let mut f = tiny();
        let a = f.write(Lba(0), SimTime::ZERO);
        let b = f.read(Lba(0), SimTime::ZERO);
        assert!(b > a, "second request waits for the first");
    }

    /// Structural invariants of the translation layer.
    fn check_ftl(f: &FlashModel) {
        // l2p/p2l agree: every mapped logical page's physical slot points
        // back at it.
        for (logical, &phys) in f.l2p.iter().enumerate() {
            if phys != u32::MAX {
                assert_eq!(f.p2l[phys as usize], logical as u32);
            }
        }
        // valid_in_block counts match p2l.
        for b in 0..f.params.blocks {
            let base = (b * f.params.pages_per_block) as usize;
            let count = (0..f.params.pages_per_block as usize)
                .filter(|&i| {
                    let v = f.p2l[base + i];
                    v != FREE && v != INVALID
                })
                .count() as u32;
            assert_eq!(count, f.valid_in_block[b as usize], "block {b}");
        }
        // Free blocks really are free.
        for &b in &f.free_blocks {
            assert_eq!(f.valid_in_block[b as usize], 0);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Arbitrary read/write interleavings keep the FTL consistent and
        /// time monotonic.
        #[test]
        fn ftl_invariants_hold_under_arbitrary_traffic(
            ops in proptest::collection::vec((proptest::bool::ANY, 0u64..24), 1..400)
        ) {
            let mut f = tiny();
            let mut t = SimTime::ZERO;
            for (is_write, lba) in ops {
                let done = if is_write {
                    f.write(Lba(lba), t)
                } else {
                    f.read(Lba(lba), t)
                };
                proptest::prop_assert!(done > t);
                t = done;
            }
            check_ftl(&f);
            let s = f.stats();
            proptest::prop_assert!(s.programs >= s.host_writes);
        }
    }
}

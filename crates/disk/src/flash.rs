//! A flash (solid-state) paging device — the paper's §6 future-work item:
//! "new hardware architecture, such as flash RAM, can be managed
//! efficiently if each specific application can control the device".
//!
//! The model is a NOR/NAND-style array with the three asymmetric
//! operations of real flash: fast page reads, slow page programs, and
//! block erases. Pages cannot be overwritten in place, so writes go
//! through a minimal log-structured translation layer: each logical page
//! write programs the next free page of an open block and invalidates the
//! old copy; when free blocks run low, garbage collection copies the valid
//! pages out of the dirtiest block and erases it. Erase counts are tracked
//! per block, so experiments can observe wear and write amplification —
//! exactly the device behaviour an application-specific policy can reduce
//! by avoiding dirty evictions.

use hipec_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::model::Lba;

/// Flash geometry and timing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlashParams {
    /// Reading one page.
    pub read_page: SimDuration,
    /// Programming (writing) one erased page.
    pub program_page: SimDuration,
    /// Erasing one block.
    pub erase_block: SimDuration,
    /// Pages per erase block.
    pub pages_per_block: u64,
    /// Number of erase blocks.
    pub blocks: u64,
    /// Logical capacity as a fraction of physical (the rest is
    /// over-provisioning for garbage collection), in percent.
    pub logical_pct: u64,
}

impl FlashParams {
    /// Early-1990s flash card: reads far faster than the paper's disk,
    /// programs slow, erases very slow, small blocks.
    pub fn early_flash_card() -> Self {
        FlashParams {
            read_page: SimDuration::from_us(150),
            program_page: SimDuration::from_us(900),
            erase_block: SimDuration::from_ms(12),
            pages_per_block: 16,
            blocks: 20_480, // 16K pages/block × 20480 = 1.25 GB physical
            logical_pct: 80,
        }
    }

    /// Logical page capacity exposed to the kernel.
    pub fn capacity_pages(&self) -> u64 {
        self.blocks * self.pages_per_block * self.logical_pct / 100
    }

    fn physical_pages(&self) -> u64 {
        self.blocks * self.pages_per_block
    }
}

impl Default for FlashParams {
    fn default() -> Self {
        FlashParams::early_flash_card()
    }
}

/// Running flash statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlashStats {
    /// Page reads serviced.
    pub reads: u64,
    /// Page programs (host writes + GC copies).
    pub programs: u64,
    /// Host-issued writes (excludes GC copies).
    pub host_writes: u64,
    /// Block erases.
    pub erases: u64,
    /// Pages copied by garbage collection.
    pub gc_copies: u64,
}

impl FlashStats {
    /// Write amplification: total programs per host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            self.programs as f64 / self.host_writes as f64
        }
    }
}

const FREE: u32 = u32::MAX;
const INVALID: u32 = u32::MAX - 1;

/// The flash device with its translation layer.
#[derive(Debug, Clone)]
pub struct FlashModel {
    params: FlashParams,
    /// Logical page → physical page (u32::MAX = unmapped).
    l2p: Vec<u32>,
    /// Physical page state: FREE, INVALID, or the logical page stored.
    p2l: Vec<u32>,
    /// Valid-page count per block.
    valid_in_block: Vec<u32>,
    /// Erase count per block (wear).
    erase_count: Vec<u32>,
    /// The block currently being filled and the next page index within it.
    open_block: u64,
    next_in_block: u64,
    /// Blocks that are fully erased and not open.
    free_blocks: Vec<u64>,
    busy_until: SimTime,
    stats: FlashStats,
}

impl FlashModel {
    /// Creates an empty (fully erased) device.
    pub fn new(params: FlashParams) -> Self {
        let phys = params.physical_pages() as usize;
        let blocks = params.blocks as usize;
        FlashModel {
            l2p: vec![u32::MAX; params.capacity_pages() as usize],
            p2l: vec![FREE; phys],
            valid_in_block: vec![0; blocks],
            erase_count: vec![0; blocks],
            open_block: 0,
            next_in_block: 0,
            free_blocks: (1..params.blocks).rev().collect(),
            busy_until: SimTime::ZERO,
            params,
            stats: FlashStats::default(),
        }
    }

    /// Device parameters.
    pub fn params(&self) -> &FlashParams {
        &self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// Maximum block erase count (peak wear).
    pub fn max_wear(&self) -> u32 {
        self.erase_count.iter().copied().max().unwrap_or(0)
    }

    /// The instant the device goes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    fn begin(&mut self, now: SimTime) -> SimTime {
        self.busy_until.max(now)
    }

    /// Structural audit of the translation layer; returns a description of
    /// the first violated invariant, if any.
    ///
    /// Checked: `l2p`/`p2l` agree, per-block valid counts match `p2l`,
    /// blocks on the free list are fully erased, and the open block cursor
    /// is in range. Used by the flash unit tests and by the kernel
    /// invariant harness after fault-injection runs.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (logical, &phys) in self.l2p.iter().enumerate() {
            if phys == u32::MAX {
                continue;
            }
            let back = self.p2l.get(phys as usize).copied();
            if back != Some(logical as u32) {
                return Err(format!(
                    "l2p[{logical}] = {phys} but p2l[{phys}] = {back:?}"
                ));
            }
        }
        for b in 0..self.params.blocks {
            let base = (b * self.params.pages_per_block) as usize;
            let count = (0..self.params.pages_per_block as usize)
                .filter(|&i| {
                    let v = self.p2l[base + i];
                    v != FREE && v != INVALID
                })
                .count() as u32;
            if count != self.valid_in_block[b as usize] {
                return Err(format!(
                    "block {b}: valid_in_block says {} but p2l has {count} live pages",
                    self.valid_in_block[b as usize]
                ));
            }
        }
        for &b in &self.free_blocks {
            if self.valid_in_block[b as usize] != 0 {
                return Err(format!("free block {b} has valid pages"));
            }
            let base = (b * self.params.pages_per_block) as usize;
            for i in 0..self.params.pages_per_block as usize {
                if self.p2l[base + i] != FREE {
                    return Err(format!("free block {b} has a non-erased page"));
                }
            }
        }
        if self.open_block >= self.params.blocks || self.next_in_block > self.params.pages_per_block
        {
            return Err(format!(
                "open-block cursor out of range: block {} page {}",
                self.open_block, self.next_in_block
            ));
        }
        // Every erased page must be reachable: in a free-list block, or in
        // the open block at or past the program cursor. An erased page
        // anywhere else is stranded capacity the FTL will never program.
        for b in 0..self.params.blocks {
            let base = (b * self.params.pages_per_block) as usize;
            for i in 0..self.params.pages_per_block as usize {
                if self.p2l[base + i] != FREE {
                    continue;
                }
                let reachable = self.free_blocks.contains(&b)
                    || (b == self.open_block && i as u64 >= self.next_in_block);
                if !reachable {
                    return Err(format!("erased page {i} of block {b} is stranded"));
                }
            }
        }
        Ok(())
    }

    /// Reads logical page `lba`; returns the completion instant.
    ///
    /// Unmapped pages (never written) read as erased and still cost one
    /// page read.
    pub fn read(&mut self, lba: Lba, now: SimTime) -> SimTime {
        debug_assert!((lba.0 as usize) < self.l2p.len(), "read past capacity");
        let start = self.begin(now);
        self.stats.reads += 1;
        self.busy_until = start + self.params.read_page;
        self.busy_until
    }

    /// Writes logical page `lba`; returns the completion instant.
    pub fn write(&mut self, lba: Lba, now: SimTime) -> SimTime {
        let mut t = self.begin(now);
        self.stats.host_writes += 1;
        t = self.program(lba.0, t);
        self.busy_until = t;
        t
    }

    fn program(&mut self, logical: u64, mut t: SimTime) -> SimTime {
        if self.next_in_block >= self.params.pages_per_block {
            t = self.open_new_block(t);
        }
        self.program_in_open(logical, t)
    }

    fn open_new_block(&mut self, mut t: SimTime) -> SimTime {
        if self.free_blocks.is_empty() {
            t = self.garbage_collect(t);
            // GC relocation may have switched the open block to the erased
            // victim and left it with erased pages. Keep filling it: popping
            // a fresh block here would strand those pages in a block that is
            // neither open nor on the free list, and at high utilization the
            // stranded space is exactly the slack GC needs to make progress.
            if self.next_in_block < self.params.pages_per_block {
                return t;
            }
        }
        self.open_block = self
            .free_blocks
            .pop()
            .expect("garbage collection frees a block");
        self.next_in_block = 0;
        t
    }

    /// Greedy garbage collection: erase least-valid blocks, relocating
    /// their live pages, until there is room to program — a block on the
    /// free list, or erased pages left in the open block after relocation.
    ///
    /// Relocation copies may consume the block just erased (the open block
    /// is full when GC starts). Requiring a *completely* free block here
    /// would deadlock near capacity: the recovered slack can end up as
    /// erased pages inside the open block, with every other block fully
    /// valid — relocation then rotates full blocks forever. Room to
    /// program is the correct termination condition.
    fn garbage_collect(&mut self, mut t: SimTime) -> SimTime {
        let mut guard = 0;
        while self.free_blocks.is_empty() && self.next_in_block >= self.params.pages_per_block {
            guard += 1;
            assert!(
                guard <= 2 * self.params.blocks,
                "flash GC cannot make progress: device over-full"
            );
            let victim = (0..self.params.blocks)
                .filter(|&b| b != self.open_block)
                .min_by_key(|&b| self.valid_in_block[b as usize])
                .expect("more than one block exists");
            // Capture the victim's live pages, then erase it. (A real FTL
            // stages through over-provisioned space; the capture models
            // that.)
            let base = victim * self.params.pages_per_block;
            let mut to_move = Vec::new();
            for i in 0..self.params.pages_per_block {
                let phys = (base + i) as usize;
                let logical = self.p2l[phys];
                if logical != FREE && logical != INVALID {
                    to_move.push(logical as u64);
                    // The page is "in transit": unmap it so the relocation
                    // program does not try to invalidate the erased copy.
                    self.l2p[logical as usize] = u32::MAX;
                }
                self.p2l[phys] = FREE;
            }
            self.valid_in_block[victim as usize] = 0;
            self.erase_count[victim as usize] += 1;
            self.stats.erases += 1;
            t += self.params.erase_block;
            self.free_blocks.push(victim);
            // Relocate live pages: into the open block's remaining space,
            // spilling into the freshly erased victim when it fills.
            for logical in to_move {
                self.stats.gc_copies += 1;
                t += self.params.read_page;
                if self.next_in_block >= self.params.pages_per_block {
                    self.open_block = self
                        .free_blocks
                        .pop()
                        .expect("the erased victim is available");
                    self.next_in_block = 0;
                }
                t = self.program_in_open(logical, t);
            }
        }
        t
    }

    /// Programs `logical` into the open block (which must have room),
    /// without triggering block allocation.
    fn program_in_open(&mut self, logical: u64, t: SimTime) -> SimTime {
        debug_assert!(self.next_in_block < self.params.pages_per_block);
        let old = self.l2p[logical as usize];
        if old != u32::MAX {
            let b = old as u64 / self.params.pages_per_block;
            self.p2l[old as usize] = INVALID;
            self.valid_in_block[b as usize] -= 1;
        }
        let phys = self.open_block * self.params.pages_per_block + self.next_in_block;
        self.next_in_block += 1;
        self.p2l[phys as usize] = logical as u32;
        self.l2p[logical as usize] = phys as u32;
        self.valid_in_block[self.open_block as usize] += 1;
        self.stats.programs += 1;
        t + self.params.program_page
    }
}

impl Default for FlashModel {
    fn default() -> Self {
        FlashModel::new(FlashParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FlashModel {
        FlashModel::new(FlashParams {
            read_page: SimDuration::from_us(100),
            program_page: SimDuration::from_us(500),
            erase_block: SimDuration::from_ms(2),
            pages_per_block: 4,
            blocks: 8,
            logical_pct: 75, // 24 logical pages over 32 physical
        })
    }

    /// Regression: near-capacity GC must not require a completely free
    /// block, and must not strand erased pages by abandoning a partially
    /// filled relocation target.
    ///
    /// With 14 logical pages over 16 physical (4 pages x 4 blocks, 90%),
    /// the only reclaimable slack often sits as erased pages inside the
    /// open block. The old GC loop (`while free_blocks.is_empty()`)
    /// rotated fully-valid blocks forever and hit the "cannot make
    /// progress" guard; the old `open_new_block` then stranded the open
    /// block's remaining erased pages. Sustained round-robin overwrites
    /// of the full logical space reproduce both within a few dozen writes.
    #[test]
    fn gc_makes_progress_at_high_utilization() {
        let mut f = FlashModel::new(FlashParams {
            read_page: SimDuration::from_us(100),
            program_page: SimDuration::from_us(500),
            erase_block: SimDuration::from_ms(2),
            pages_per_block: 4,
            blocks: 4,
            logical_pct: 90, // 14 logical pages over 16 physical
        });
        let mut t = SimTime::ZERO;
        for round in 0..64u64 {
            for lba in 0..14u64 {
                t = f.write(Lba(lba), t);
                f.check_consistency()
                    .unwrap_or_else(|e| panic!("round {round} lba {lba}: {e}"));
            }
        }
        // Everything written is still mapped somewhere.
        let s = f.stats();
        assert_eq!(s.host_writes, 64 * 14);
        assert!(s.erases > 0, "this workload must trigger GC");
    }

    #[test]
    fn reads_are_fast_and_writes_slow() {
        let mut f = tiny();
        let r = f.read(Lba(0), SimTime::ZERO);
        assert_eq!(r.as_ns(), 100_000);
        let w = f.write(Lba(0), r);
        assert_eq!(w.since(r), SimDuration::from_us(500));
        assert_eq!(f.stats().reads, 1);
        assert_eq!(f.stats().host_writes, 1);
    }

    #[test]
    fn overwrites_invalidate_and_remap() {
        let mut f = tiny();
        let mut t = SimTime::ZERO;
        for _ in 0..3 {
            t = f.write(Lba(5), t);
        }
        assert_eq!(f.stats().host_writes, 3);
        assert_eq!(f.stats().programs, 3);
        // One live copy, two invalid.
        let valid: u32 = f.valid_in_block.iter().sum();
        assert_eq!(valid, 1);
    }

    #[test]
    fn gc_kicks_in_when_blocks_run_out_and_wear_accrues() {
        let mut f = tiny(); // 32 physical pages
        let mut t = SimTime::ZERO;
        // Hammer a working set of 6 logical pages with 200 writes: far
        // more programs than physical pages, forcing repeated GC.
        for i in 0..200u64 {
            t = f.write(Lba(i % 6), t);
        }
        let s = f.stats();
        assert_eq!(s.host_writes, 200);
        assert!(s.erases > 10, "GC must have erased blocks ({})", s.erases);
        assert!(f.max_wear() >= 2);
        assert!(
            s.write_amplification() >= 1.0,
            "WA {} must be ≥ 1",
            s.write_amplification()
        );
        // Every logical page in the working set still maps somewhere.
        for l in 0..6usize {
            assert_ne!(f.l2p[l], u32::MAX);
        }
    }

    #[test]
    fn sequential_writes_have_unit_write_amplification() {
        let mut f = tiny();
        let mut t = SimTime::ZERO;
        // Write each logical page once: no page is ever invalidated, so GC
        // (if any) finds fully-invalid blocks only — no copies.
        for l in 0..24u64 {
            t = f.write(Lba(l), t);
        }
        let s = f.stats();
        assert_eq!(s.programs, s.host_writes);
        assert_eq!(s.gc_copies, 0);
    }

    #[test]
    fn capacity_reflects_overprovisioning() {
        let p = FlashParams::early_flash_card();
        assert!(p.capacity_pages() < p.blocks * p.pages_per_block);
        assert_eq!(
            p.capacity_pages(),
            p.blocks * p.pages_per_block * p.logical_pct / 100
        );
    }

    #[test]
    fn device_serializes_requests() {
        let mut f = tiny();
        let a = f.write(Lba(0), SimTime::ZERO);
        let b = f.read(Lba(0), SimTime::ZERO);
        assert!(b > a, "second request waits for the first");
    }

    /// Structural invariants of the translation layer.
    fn check_ftl(f: &FlashModel) {
        // l2p/p2l agree: every mapped logical page's physical slot points
        // back at it.
        for (logical, &phys) in f.l2p.iter().enumerate() {
            if phys != u32::MAX {
                assert_eq!(f.p2l[phys as usize], logical as u32);
            }
        }
        // valid_in_block counts match p2l.
        for b in 0..f.params.blocks {
            let base = (b * f.params.pages_per_block) as usize;
            let count = (0..f.params.pages_per_block as usize)
                .filter(|&i| {
                    let v = f.p2l[base + i];
                    v != FREE && v != INVALID
                })
                .count() as u32;
            assert_eq!(count, f.valid_in_block[b as usize], "block {b}");
        }
        // Free blocks really are free.
        for &b in &f.free_blocks {
            assert_eq!(f.valid_in_block[b as usize], 0);
        }
    }

    /// Replays the shrunk counterexample persisted in
    /// `proptest-regressions/flash.txt` (seed `3609ece3…`). The vendored
    /// proptest runner does not read corpus files, so the case is pinned
    /// here verbatim; the corpus entry stays checked in for upstream
    /// proptest runs.
    #[test]
    fn ftl_regression_persisted_shrink_3609ece3() {
        const OPS: &[(bool, u64)] = &[
            (false, 6),
            (false, 1),
            (true, 12),
            (true, 17),
            (true, 17),
            (false, 18),
            (true, 22),
            (true, 16),
            (false, 8),
            (true, 13),
            (false, 23),
            (false, 0),
            (true, 23),
            (true, 6),
            (true, 14),
            (true, 2),
            (true, 10),
            (false, 19),
            (true, 19),
            (true, 15),
            (true, 10),
            (true, 19),
            (true, 15),
            (true, 17),
            (false, 6),
            (false, 16),
            (false, 9),
            (true, 20),
            (false, 19),
            (true, 0),
            (false, 1),
            (true, 21),
            (false, 10),
            (false, 7),
            (true, 15),
            (false, 6),
            (false, 15),
            (true, 6),
            (false, 10),
            (true, 6),
            (false, 22),
            (false, 19),
            (true, 17),
            (false, 11),
            (false, 14),
            (false, 21),
            (true, 20),
            (true, 8),
            (true, 12),
            (true, 7),
            (false, 12),
            (true, 18),
            (false, 19),
            (true, 12),
            (true, 19),
            (false, 16),
            (true, 7),
            (true, 8),
            (false, 10),
            (false, 3),
            (false, 11),
            (false, 19),
            (false, 5),
            (false, 4),
            (false, 19),
            (false, 12),
            (true, 11),
            (true, 19),
            (false, 16),
            (true, 13),
            (true, 15),
            (true, 6),
            (true, 8),
            (true, 16),
            (false, 10),
            (true, 13),
            (false, 0),
            (true, 22),
            (false, 8),
            (true, 8),
            (true, 19),
            (false, 16),
            (true, 18),
            (true, 20),
            (true, 13),
            (true, 17),
            (false, 9),
            (true, 3),
            (true, 16),
            (true, 4),
            (false, 8),
            (true, 21),
            (true, 13),
            (false, 9),
            (false, 1),
            (false, 8),
            (false, 5),
            (false, 0),
            (true, 17),
            (false, 5),
            (false, 9),
            (true, 7),
            (true, 5),
            (false, 14),
            (true, 3),
            (false, 14),
            (true, 3),
            (false, 4),
            (true, 11),
            (true, 13),
            (false, 18),
            (true, 6),
            (false, 18),
            (true, 5),
            (false, 2),
            (true, 5),
            (true, 20),
            (false, 22),
            (true, 5),
            (true, 0),
            (true, 7),
            (false, 13),
            (true, 23),
            (false, 6),
            (true, 0),
            (false, 17),
            (true, 16),
            (false, 18),
            (false, 0),
            (false, 13),
            (true, 11),
            (false, 13),
            (true, 5),
            (true, 20),
            (false, 6),
            (false, 3),
            (true, 8),
            (true, 19),
        ];
        let mut f = tiny();
        let mut t = SimTime::ZERO;
        for &(is_write, lba) in OPS {
            let done = if is_write {
                f.write(Lba(lba), t)
            } else {
                f.read(Lba(lba), t)
            };
            assert!(done > t, "device time must advance");
            t = done;
        }
        check_ftl(&f);
        let s = f.stats();
        assert!(s.programs >= s.host_writes);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Arbitrary read/write interleavings keep the FTL consistent and
        /// time monotonic.
        #[test]
        fn ftl_invariants_hold_under_arbitrary_traffic(
            ops in proptest::collection::vec((proptest::bool::ANY, 0u64..24), 1..400)
        ) {
            let mut f = tiny();
            let mut t = SimTime::ZERO;
            for (is_write, lba) in ops {
                let done = if is_write {
                    f.write(Lba(lba), t)
                } else {
                    f.read(Lba(lba), t)
                };
                proptest::prop_assert!(done > t);
                t = done;
            }
            check_ftl(&f);
            let s = f.stats();
            proptest::prop_assert!(s.programs >= s.host_writes);
        }
    }
}

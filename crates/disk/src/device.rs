//! A paging device: either the mechanical disk or the flash extension.

use hipec_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::flash::{FlashModel, FlashParams};
use crate::model::{DiskModel, DiskParams, Lba};

/// Parameters for either device kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DeviceParams {
    /// A seek/rotation/transfer disk.
    Disk(DiskParams),
    /// A flash array with a log-structured translation layer.
    Flash(FlashParams),
}

impl DeviceParams {
    /// Logical page capacity.
    pub fn capacity_pages(&self) -> u64 {
        match self {
            DeviceParams::Disk(p) => p.capacity_pages(),
            DeviceParams::Flash(p) => p.capacity_pages(),
        }
    }

    /// Builds the device.
    pub fn build(&self) -> PagingDevice {
        match self {
            DeviceParams::Disk(p) => PagingDevice::Disk(DiskModel::new(p.clone())),
            DeviceParams::Flash(p) => PagingDevice::Flash(FlashModel::new(p.clone())),
        }
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams::Disk(DiskParams::default())
    }
}

/// The device a kernel pages against.
#[derive(Debug, Clone)]
pub enum PagingDevice {
    /// Mechanical disk.
    Disk(DiskModel),
    /// Flash array.
    Flash(FlashModel),
}

impl PagingDevice {
    /// Services a page read submitted at `now`; returns completion.
    pub fn read(&mut self, lba: Lba, now: SimTime) -> SimTime {
        match self {
            PagingDevice::Disk(d) => d.read(lba, now),
            PagingDevice::Flash(f) => f.read(lba, now),
        }
    }

    /// Services a page write submitted at `now`; returns completion.
    pub fn write(&mut self, lba: Lba, now: SimTime) -> SimTime {
        match self {
            PagingDevice::Disk(d) => d.write(lba, now),
            PagingDevice::Flash(f) => f.write(lba, now),
        }
    }

    /// The instant the device goes idle.
    pub fn busy_until(&self) -> SimTime {
        match self {
            PagingDevice::Disk(d) => d.busy_until(),
            PagingDevice::Flash(f) => f.busy_until(),
        }
    }

    /// The disk, if this device is one.
    pub fn as_disk(&self) -> Option<&DiskModel> {
        match self {
            PagingDevice::Disk(d) => Some(d),
            PagingDevice::Flash(_) => None,
        }
    }

    /// The flash array, if this device is one.
    pub fn as_flash(&self) -> Option<&FlashModel> {
        match self {
            PagingDevice::Disk(_) => None,
            PagingDevice::Flash(f) => Some(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_kinds() {
        let d = DeviceParams::default().build();
        assert!(d.as_disk().is_some());
        assert!(d.as_flash().is_none());
        let f = DeviceParams::Flash(FlashParams::default()).build();
        assert!(f.as_flash().is_some());
        assert!(f.as_disk().is_none());
    }

    #[test]
    fn both_kinds_service_requests() {
        for params in [
            DeviceParams::default(),
            DeviceParams::Flash(FlashParams::default()),
        ] {
            let mut dev = params.build();
            let r = dev.read(Lba(3), SimTime::ZERO);
            assert!(r > SimTime::ZERO);
            let w = dev.write(Lba(3), r);
            assert!(w > r);
            assert_eq!(dev.busy_until(), w);
            assert!(params.capacity_pages() > 0);
        }
    }
}

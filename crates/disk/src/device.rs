//! A paging device: either the mechanical disk or the flash extension,
//! optionally wrapped by a deterministic [`FaultPlan`].

use hipec_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::fault::{DiskFault, FaultConfig, FaultPlan, PhasedFaultConfig};
use crate::flash::{FlashModel, FlashParams};
use crate::model::{DiskModel, DiskParams, Lba};

/// Parameters for either device kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DeviceParams {
    /// A seek/rotation/transfer disk.
    Disk(DiskParams),
    /// A flash array with a log-structured translation layer.
    Flash(FlashParams),
}

impl DeviceParams {
    /// Logical page capacity.
    pub fn capacity_pages(&self) -> u64 {
        match self {
            DeviceParams::Disk(p) => p.capacity_pages(),
            DeviceParams::Flash(p) => p.capacity_pages(),
        }
    }

    /// Builds the device (fault-free).
    pub fn build(&self) -> PagingDevice {
        let model = match self {
            DeviceParams::Disk(p) => DeviceModel::Disk(DiskModel::new(p.clone())),
            DeviceParams::Flash(p) => DeviceModel::Flash(FlashModel::new(p.clone())),
        };
        PagingDevice {
            model,
            faults: None,
            stats: DeviceStats::default(),
        }
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams::Disk(DiskParams::default())
    }
}

/// The timing model behind a [`PagingDevice`].
#[derive(Debug, Clone)]
pub enum DeviceModel {
    /// Mechanical disk.
    Disk(DiskModel),
    /// Flash array.
    Flash(FlashModel),
}

/// The completion report of an accepted write.
#[derive(Debug, Clone, Copy)]
pub struct WriteCompletion {
    /// When the write completes (injected delay included).
    pub done: SimTime,
    /// The write completed torn: the data did not all make it and the
    /// caller must re-issue the write after reaping the completion.
    pub torn: bool,
}

/// Cumulative operation counters for one [`PagingDevice`].
///
/// Updated on every submission; read by the kernel's metrics snapshot. All
/// fields count submissions, so `reads - read_errors` is the number of reads
/// the device accepted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Read submissions.
    pub reads: u64,
    /// Write submissions.
    pub writes: u64,
    /// Reads rejected by the fault plan.
    pub read_errors: u64,
    /// Writes rejected by the fault plan.
    pub write_errors: u64,
    /// Writes accepted but completed torn.
    pub torn_writes: u64,
}

/// The device a kernel pages against: a timing model plus an optional
/// fault-injection plan. Without a plan, reads and writes never fail.
#[derive(Debug, Clone)]
pub struct PagingDevice {
    model: DeviceModel,
    faults: Option<FaultPlan>,
    stats: DeviceStats,
}

impl PagingDevice {
    /// Installs a fault plan (replacing any existing one).
    pub fn set_fault_plan(&mut self, cfg: FaultConfig) {
        self.faults = Some(FaultPlan::new(cfg));
    }

    /// Installs a phased fault plan (replacing any existing one).
    pub fn set_phased_fault_plan(&mut self, cfg: PhasedFaultConfig) {
        self.faults = Some(FaultPlan::phased(cfg));
    }

    /// Removes the fault plan; subsequent operations never fail.
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// The installed fault plan, if any (its trace is the failure record).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Cumulative operation counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Services a page read submitted at `now`; returns completion.
    pub fn read(&mut self, lba: Lba, now: SimTime) -> Result<SimTime, DiskFault> {
        self.stats.reads += 1;
        let decision = self.faults.as_mut().map(|p| p.on_read(lba));
        if let Some(d) = decision {
            if d.error {
                self.stats.read_errors += 1;
                return Err(DiskFault::ReadError(lba));
            }
            let done = self.model_read(lba, now);
            return Ok(done + d.extra_delay);
        }
        Ok(self.model_read(lba, now))
    }

    /// Services a page write submitted at `now`; returns the completion
    /// report, or an error if the device rejected the submission.
    pub fn write(&mut self, lba: Lba, now: SimTime) -> Result<WriteCompletion, DiskFault> {
        self.stats.writes += 1;
        let decision = self.faults.as_mut().map(|p| p.on_write(lba));
        if let Some(d) = decision {
            if d.error {
                self.stats.write_errors += 1;
                return Err(DiskFault::WriteError(lba));
            }
            if d.torn {
                self.stats.torn_writes += 1;
            }
            let done = self.model_write(lba, now);
            return Ok(WriteCompletion {
                done: done + d.extra_delay,
                torn: d.torn,
            });
        }
        Ok(WriteCompletion {
            done: self.model_write(lba, now),
            torn: false,
        })
    }

    fn model_read(&mut self, lba: Lba, now: SimTime) -> SimTime {
        match &mut self.model {
            DeviceModel::Disk(d) => d.read(lba, now),
            DeviceModel::Flash(f) => f.read(lba, now),
        }
    }

    fn model_write(&mut self, lba: Lba, now: SimTime) -> SimTime {
        match &mut self.model {
            DeviceModel::Disk(d) => d.write(lba, now),
            DeviceModel::Flash(f) => f.write(lba, now),
        }
    }

    /// The instant the device goes idle (injected delays excluded — they
    /// model late completion reporting, not device occupancy).
    pub fn busy_until(&self) -> SimTime {
        match &self.model {
            DeviceModel::Disk(d) => d.busy_until(),
            DeviceModel::Flash(f) => f.busy_until(),
        }
    }

    /// The disk, if this device is one.
    pub fn as_disk(&self) -> Option<&DiskModel> {
        match &self.model {
            DeviceModel::Disk(d) => Some(d),
            DeviceModel::Flash(_) => None,
        }
    }

    /// The flash array, if this device is one.
    pub fn as_flash(&self) -> Option<&FlashModel> {
        match &self.model {
            DeviceModel::Disk(_) => None,
            DeviceModel::Flash(f) => Some(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipec_sim::SimDuration;

    #[test]
    fn builds_both_kinds() {
        let d = DeviceParams::default().build();
        assert!(d.as_disk().is_some());
        assert!(d.as_flash().is_none());
        let f = DeviceParams::Flash(FlashParams::default()).build();
        assert!(f.as_flash().is_some());
        assert!(f.as_disk().is_none());
    }

    #[test]
    fn both_kinds_service_requests() {
        for params in [
            DeviceParams::default(),
            DeviceParams::Flash(FlashParams::default()),
        ] {
            let mut dev = params.build();
            let r = dev.read(Lba(3), SimTime::ZERO).expect("fault-free read");
            assert!(r > SimTime::ZERO);
            let w = dev.write(Lba(3), r).expect("fault-free write");
            assert!(w.done > r);
            assert!(!w.torn);
            assert_eq!(dev.busy_until(), w.done);
            assert!(params.capacity_pages() > 0);
        }
    }

    #[test]
    fn fault_plan_injects_and_replays() {
        let cfg = FaultConfig {
            seed: 77,
            read_error_permille: 300,
            write_error_permille: 300,
            delay_permille: 300,
            max_delay: SimDuration::from_ms(2),
            torn_permille: 300,
        };
        let run = |cfg: FaultConfig| {
            let mut dev = DeviceParams::default().build();
            dev.set_fault_plan(cfg);
            let mut outcomes = Vec::new();
            let mut t = SimTime::ZERO;
            for i in 0..200u64 {
                if i % 2 == 0 {
                    match dev.read(Lba(i % 50), t) {
                        Ok(done) => {
                            t = t.max(done);
                            outcomes.push((i, true));
                        }
                        Err(_) => outcomes.push((i, false)),
                    }
                } else {
                    match dev.write(Lba(i % 50), t) {
                        Ok(c) => {
                            t = t.max(c.done);
                            outcomes.push((i, !c.torn));
                        }
                        Err(_) => outcomes.push((i, false)),
                    }
                }
            }
            let trace = dev.fault_plan().expect("plan installed").trace().to_vec();
            (outcomes, trace)
        };
        let (o1, t1) = run(cfg);
        let (o2, t2) = run(cfg);
        assert!(!t1.is_empty(), "this config must inject faults");
        assert_eq!(o1, o2, "same seed must give the same outcomes");
        assert_eq!(t1, t2, "same seed must give the same trace");
        let (_, t3) = run(FaultConfig { seed: 78, ..cfg });
        assert_ne!(t1, t3, "different seeds must diverge");
    }

    #[test]
    fn clearing_the_plan_stops_injection() {
        let mut dev = DeviceParams::default().build();
        dev.set_fault_plan(FaultConfig {
            seed: 1,
            read_error_permille: 1000,
            write_error_permille: 1000,
            delay_permille: 0,
            max_delay: SimDuration::ZERO,
            torn_permille: 0,
        });
        assert!(dev.read(Lba(0), SimTime::ZERO).is_err());
        dev.clear_fault_plan();
        assert!(dev.read(Lba(0), SimTime::ZERO).is_ok());
        assert!(dev.fault_plan().is_none());
    }
}

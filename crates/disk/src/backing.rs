//! Backing-store layout: mapping memory-object pages onto disk blocks.
//!
//! Each memory object that needs paging gets a contiguous extent of logical
//! blocks, in creation order — the layout a 1990s paging partition would
//! produce for the single-application experiments in the paper.

use std::collections::HashMap;

use crate::model::Lba;

/// The disk location of one page of a memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLocation {
    /// Logical block that holds the page.
    pub lba: Lba,
}

#[derive(Debug, Clone, Copy)]
struct Extent {
    base: u64,
    pages: u64,
}

/// Allocates disk extents to memory objects and resolves page addresses.
///
/// Keys are caller-chosen 64-bit object identifiers (the VM crate uses its
/// `ObjectId`). Extents are never recycled — the simulated experiments are
/// short-lived and a paging partition does not need compaction fidelity.
#[derive(Debug, Clone, Default)]
pub struct BackingStore {
    extents: HashMap<u64, Extent>,
    next_free: u64,
    capacity: u64,
}

/// Errors from backing-store allocation and lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackingError {
    /// The device has no room for the requested extent.
    OutOfSpace {
        /// Pages requested.
        requested: u64,
        /// Pages remaining.
        available: u64,
    },
    /// The object already owns an extent.
    AlreadyAllocated(u64),
    /// The object has no extent.
    NoExtent(u64),
    /// The page offset is outside the object's extent.
    OutOfRange {
        /// Offending page offset.
        offset: u64,
        /// Extent size in pages.
        pages: u64,
    },
}

impl std::fmt::Display for BackingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackingError::OutOfSpace {
                requested,
                available,
            } => write!(
                f,
                "backing store exhausted: requested {requested} pages, {available} available"
            ),
            BackingError::AlreadyAllocated(id) => {
                write!(f, "object {id} already has a backing extent")
            }
            BackingError::NoExtent(id) => write!(f, "object {id} has no backing extent"),
            BackingError::OutOfRange { offset, pages } => {
                write!(f, "page offset {offset} outside extent of {pages} pages")
            }
        }
    }
}

impl std::error::Error for BackingError {}

impl BackingStore {
    /// Creates a store over a device with the given page capacity.
    pub fn new(capacity_pages: u64) -> Self {
        BackingStore {
            extents: HashMap::new(),
            next_free: 0,
            capacity: capacity_pages,
        }
    }

    /// Pages not yet assigned to any extent.
    pub fn available_pages(&self) -> u64 {
        self.capacity - self.next_free
    }

    /// Allocates a contiguous extent of `pages` for `object`.
    pub fn allocate(&mut self, object: u64, pages: u64) -> Result<(), BackingError> {
        if self.extents.contains_key(&object) {
            return Err(BackingError::AlreadyAllocated(object));
        }
        if pages > self.available_pages() {
            return Err(BackingError::OutOfSpace {
                requested: pages,
                available: self.available_pages(),
            });
        }
        self.extents.insert(
            object,
            Extent {
                base: self.next_free,
                pages,
            },
        );
        self.next_free += pages;
        Ok(())
    }

    /// True if `object` has an extent.
    pub fn has_extent(&self, object: u64) -> bool {
        self.extents.contains_key(&object)
    }

    /// Resolves the disk location of `object`'s page at `page_offset`.
    pub fn locate(&self, object: u64, page_offset: u64) -> Result<PageLocation, BackingError> {
        let extent = self
            .extents
            .get(&object)
            .ok_or(BackingError::NoExtent(object))?;
        if page_offset >= extent.pages {
            return Err(BackingError::OutOfRange {
                offset: page_offset,
                pages: extent.pages,
            });
        }
        Ok(PageLocation {
            lba: Lba(extent.base + page_offset),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_are_contiguous_and_disjoint() {
        let mut b = BackingStore::new(100);
        b.allocate(1, 10).expect("first extent");
        b.allocate(2, 20).expect("second extent");
        assert_eq!(b.locate(1, 0).expect("page").lba, Lba(0));
        assert_eq!(b.locate(1, 9).expect("page").lba, Lba(9));
        assert_eq!(b.locate(2, 0).expect("page").lba, Lba(10));
        assert_eq!(b.available_pages(), 70);
    }

    #[test]
    fn double_allocation_is_rejected() {
        let mut b = BackingStore::new(100);
        b.allocate(1, 10).expect("first");
        assert_eq!(b.allocate(1, 5), Err(BackingError::AlreadyAllocated(1)));
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut b = BackingStore::new(16);
        b.allocate(1, 10).expect("fits");
        assert_eq!(
            b.allocate(2, 10),
            Err(BackingError::OutOfSpace {
                requested: 10,
                available: 6
            })
        );
    }

    #[test]
    fn out_of_range_and_missing_lookups_fail() {
        let mut b = BackingStore::new(16);
        b.allocate(1, 4).expect("fits");
        assert_eq!(
            b.locate(1, 4),
            Err(BackingError::OutOfRange {
                offset: 4,
                pages: 4
            })
        );
        assert_eq!(b.locate(9, 0), Err(BackingError::NoExtent(9)));
        assert!(b.has_extent(1));
        assert!(!b.has_extent(9));
    }

    #[test]
    fn errors_display() {
        let e = BackingError::OutOfSpace {
            requested: 5,
            available: 2,
        };
        assert!(e.to_string().contains("requested 5"));
    }
}

//! Bounded, allocation-free event tracing for the VM layer.
//!
//! [`EventRing`] is the storage primitive shared by every trace in the
//! system: a fixed-capacity ring of timestamped records that overwrites its
//! oldest entry when full. Records are stamped with the **virtual** clock,
//! so two runs of the same seeded workload produce bit-for-bit identical
//! traces. Recording never charges the clock and never allocates after
//! construction, so enabling or disabling a trace cannot perturb the
//! simulation it observes.
//!
//! [`VmEvent`] is the event vocabulary of this crate (fault resolution,
//! pageout scans, the flush/retry/abandon lifecycle). `hipec-core` wraps it
//! in its own richer event type and drains the VM ring into the kernel-wide
//! trace so the two layers interleave in causal order.

use hipec_sim::{SimDuration, SimTime};

use crate::kernel::AccessKind;
use crate::types::{DeviceId, FrameId, ObjectId, TaskId};

/// Default ring capacity (records kept before overwriting).
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// One recorded event: virtual timestamp, global sequence number, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord<E> {
    /// Virtual time at which the event was recorded.
    pub at: SimTime,
    /// Position in the emission order (monotonic, never reused).
    pub seq: u64,
    /// The event itself.
    pub event: E,
}

/// A bounded ring of trace records.
///
/// All storage is allocated up front; `push` is O(1) and allocation-free.
/// When the ring is full the oldest record is overwritten and counted in
/// [`EventRing::dropped`].
#[derive(Debug, Clone)]
pub struct EventRing<E> {
    buf: Vec<TraceRecord<E>>,
    cap: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    next_seq: u64,
    enabled: bool,
    recorded: u64,
    dropped: u64,
}

impl<E: Copy> EventRing<E> {
    /// An enabled ring holding up to `cap` records (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            next_seq: 0,
            enabled: true,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Turns recording on or off. Counters and contents are retained.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// True if the ring is currently recording.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event at virtual time `at` and returns a copy of the
    /// stored record (so callers can forward it to a sink without re-reading
    /// the ring). No-op — returning `None` — while disabled.
    pub fn push(&mut self, at: SimTime, event: E) -> Option<TraceRecord<E>> {
        if !self.enabled {
            return None;
        }
        let rec = TraceRecord {
            at,
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        self.recorded += 1;
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
        Some(rec)
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum records held before overwriting.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events recorded over the ring's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events overwritten before they were read.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held records oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord<E>> {
        let (wrapped, linear) = self.buf.split_at(self.head);
        linear.iter().chain(wrapped.iter())
    }

    /// Moves every held record (oldest → newest) into `out` and empties the
    /// ring. `out` is not cleared; lifetime counters are retained.
    pub fn drain_into(&mut self, out: &mut Vec<TraceRecord<E>>) {
        out.extend(self.iter().copied());
        self.buf.clear();
        self.head = 0;
    }

    /// Discards all held records (lifetime counters are retained).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

/// Events emitted by the VM layer (fault path, pageout daemon, flush pump).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmEvent {
    /// A fault resolved by the kernel itself (policy faults are traced by
    /// the HiPEC layer, which sees their resolution).
    Fault {
        /// Faulting task.
        task: TaskId,
        /// Faulting virtual page.
        vpage: u64,
        /// How it resolved.
        kind: AccessKind,
        /// Write access.
        write: bool,
        /// Virtual time from fault entry to resolution (I/O wait included).
        latency: SimDuration,
    },
    /// A page-in submission the device rejected.
    ReadError {
        /// The rejecting device.
        device: DeviceId,
        /// Backing object of the failed page-in.
        object: ObjectId,
        /// Page within the object.
        offset: u64,
    },
    /// One full pageout-daemon scan finished.
    PageoutScan {
        /// Clean pages freed.
        freed: u64,
        /// Dirty pages handed to the device.
        flushed: u64,
    },
    /// A dirty page's write-back was submitted.
    FlushStart {
        /// The device the write was submitted to.
        device: DeviceId,
        /// The busy frame.
        frame: FrameId,
        /// The device accepted the write but will complete it torn.
        torn: bool,
    },
    /// A write-back completed clean; the frame returned to the free pool.
    FlushComplete {
        /// The completing device.
        device: DeviceId,
        /// The freed frame.
        frame: FrameId,
    },
    /// A torn completion was reaped; the write is queued for re-issue.
    TornRetry {
        /// The device that tore the write.
        device: DeviceId,
        /// The still-busy frame.
        frame: FrameId,
        /// Submissions so far.
        attempt: u8,
    },
    /// A queued re-issue was rejected outright by the device.
    RetryRejected {
        /// The rejecting device.
        device: DeviceId,
        /// The still-busy frame.
        frame: FrameId,
        /// Submissions so far.
        attempt: u8,
    },
    /// The retry budget ran out: the page's data is lost, the frame freed,
    /// and a [`crate::kernel::DeadFlush`] surfaced to the HiPEC layer.
    FlushAbandoned {
        /// The device whose faults exhausted the budget.
        device: DeviceId,
        /// The abandoned frame.
        frame: FrameId,
        /// Total submissions before giving up.
        attempts: u8,
    },
    /// A pump call exhausted its submission budget with parked work left
    /// waiting; the deferred entries stay queued for the next call. (The
    /// per-call budget is what keeps one storming device from monopolising
    /// a pump — see `Kernel::pump_submit_budget`.)
    PumpDeferred {
        /// Parked submissions (torn retries + queued copies) left waiting.
        deferred: u64,
    },
    /// A device's circuit breaker tripped open: that device's pump enters
    /// degraded mode (backoff-gated, bounded-in-flight probe submissions).
    BreakerTrip {
        /// The tripped device.
        device: DeviceId,
        /// Failure score at the trip (milli-units, 0–1000).
        ewma_milli: u64,
    },
    /// A degraded-mode submission served as a half-open probe.
    BreakerProbe {
        /// The probed device.
        device: DeviceId,
        /// The probe was accepted and not torn.
        ok: bool,
    },
    /// A clean probe streak closed a device's breaker: that device is
    /// healthy again.
    BreakerClose {
        /// The recovered device.
        device: DeviceId,
        /// Failure score at the close (milli-units, 0–1000).
        ewma_milli: u64,
    },
    /// A device left the Active state and its drain began: every bound
    /// object was re-routed to a sibling and backing copies were queued.
    DeviceDraining {
        /// The device being drained.
        device: DeviceId,
        /// The surviving device receiving its objects.
        to: DeviceId,
        /// Objects re-bound.
        objects: u64,
        /// Backing-page copies queued.
        pages: u64,
    },
    /// A drain finished: no in-flight write, parked retry or queued
    /// migration traces back to the device any more.
    DeviceDrained {
        /// The fully drained device.
        device: DeviceId,
    },
    /// A breaker exhausted its backoff budget: the device is permanently
    /// failed and its drain was forced onto the survivors.
    DeviceDead {
        /// The dead device.
        device: DeviceId,
        /// Failure score at escalation (milli-units, 0–1000).
        ewma_milli: u64,
    },
    /// One object was re-bound to another device (hot/cold tier migration,
    /// hot-unplug drain, or Dead-device escalation).
    ObjectMigrated {
        /// The migrated object.
        object: ObjectId,
        /// Previous backing device.
        from: DeviceId,
        /// New backing device.
        to: DeviceId,
        /// Backing-page copies queued for the move.
        pages: u64,
        /// True when the move was forced by device failure (Dead
        /// escalation), false for voluntary unplug or tier rebalancing.
        forced: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_records_in_order_and_wraps() {
        let mut r: EventRing<u32> = EventRing::new(4);
        for i in 0..6u32 {
            r.push(SimTime::from_ns(u64::from(i)), i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 6);
        assert_eq!(r.dropped(), 2);
        let held: Vec<u32> = r.iter().map(|rec| rec.event).collect();
        assert_eq!(held, vec![2, 3, 4, 5]);
        let seqs: Vec<u64> = r.iter().map(|rec| rec.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
    }

    #[test]
    fn disabled_ring_drops_nothing_and_records_nothing() {
        let mut r: EventRing<u32> = EventRing::new(2);
        r.set_enabled(false);
        r.push(SimTime::ZERO, 1);
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 0);
        r.set_enabled(true);
        r.push(SimTime::ZERO, 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn drain_empties_but_keeps_counters() {
        let mut r: EventRing<u32> = EventRing::new(3);
        for i in 0..5u32 {
            r.push(SimTime::ZERO, i);
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(
            out.iter().map(|rec| rec.event).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 5);
        // Subsequent pushes restart from the front without reallocating.
        r.push(SimTime::ZERO, 9);
        assert_eq!(r.iter().next().map(|rec| rec.event), Some(9));
        assert_eq!(r.iter().next().map(|rec| rec.seq), Some(5));
    }
}

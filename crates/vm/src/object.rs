//! Memory objects: the unit of backing and residency.
//!
//! A `VmObject` represents a contiguous pageable entity — a memory-mapped
//! file or an anonymous (zero-fill) region — exactly as in Mach. It tracks
//! which of its pages are resident and in which frames. HiPEC attaches a
//! *container* to an object (paper §4.1); the container itself lives in
//! `hipec-core`, the object only records the attachment key.

use std::collections::HashMap;

use crate::types::{DeviceId, FrameId, ObjectId, PageOffset};

/// How an object's non-resident pages are materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// Zero-filled on first touch; paged to swap only if evicted dirty.
    Anonymous,
    /// Backed by a file extent on the paging device; faults read from disk.
    File,
}

/// A Mach-style memory object.
#[derive(Debug, Clone)]
pub struct VmObject {
    /// This object's identifier.
    pub id: ObjectId,
    /// Length in pages.
    pub size_pages: u64,
    /// Backing kind.
    pub backing: Backing,
    /// True once a swap extent has been allocated (anonymous objects only).
    pub swap_allocated: bool,
    /// Resident pages: object page offset → physical frame.
    pub resident: HashMap<u64, FrameId>,
    /// Pages that have been written to backing store at least once
    /// (anonymous objects: a zero-fill is only correct before first pageout).
    pub paged_out: std::collections::HashSet<u64>,
    /// HiPEC container attachment key, if this object is under specific
    /// application control.
    pub container: Option<u32>,
    /// The backing device this object pages against. Bound at creation;
    /// re-bound only by the migration machinery
    /// ([`crate::Kernel::migrate_object`], [`crate::Kernel::remove_device`]
    /// and Dead-device escalation), which copies the object's backing pages
    /// onto the new device.
    pub device: DeviceId,
    /// Faults taken against this object since the last
    /// [`crate::Kernel::rebalance_tiers`] interval — the hot/cold signal
    /// that drives steady-state tier migration.
    pub fault_rate: u64,
    /// Lifetime device re-bindings (hot/cold promotions, demotions and
    /// forced drains).
    pub migrations: u64,
}

impl VmObject {
    /// Creates an object with no resident pages.
    pub fn new(id: ObjectId, size_pages: u64, backing: Backing) -> Self {
        VmObject {
            id,
            size_pages,
            backing,
            swap_allocated: false,
            resident: HashMap::new(),
            paged_out: std::collections::HashSet::new(),
            container: None,
            device: DeviceId(0),
            fault_rate: 0,
            migrations: 0,
        }
    }

    /// The frame holding `offset`, if resident.
    pub fn lookup(&self, offset: PageOffset) -> Option<FrameId> {
        self.resident.get(&offset.0).copied()
    }

    /// Marks `offset` resident in `frame`.
    pub fn insert(&mut self, offset: PageOffset, frame: FrameId) {
        self.resident.insert(offset.0, frame);
    }

    /// Removes the residency entry for `offset`, returning its frame.
    pub fn evict(&mut self, offset: PageOffset) -> Option<FrameId> {
        self.resident.remove(&offset.0)
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// True if a fault on `offset` must read from the paging device.
    pub fn fault_needs_io(&self, offset: PageOffset) -> bool {
        match self.backing {
            Backing::File => true,
            Backing::Anonymous => self.paged_out.contains(&offset.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residency_tracking() {
        let mut o = VmObject::new(ObjectId(1), 16, Backing::Anonymous);
        assert_eq!(o.lookup(PageOffset(3)), None);
        o.insert(PageOffset(3), FrameId(7));
        assert_eq!(o.lookup(PageOffset(3)), Some(FrameId(7)));
        assert_eq!(o.resident_count(), 1);
        assert_eq!(o.evict(PageOffset(3)), Some(FrameId(7)));
        assert_eq!(o.resident_count(), 0);
    }

    #[test]
    fn file_pages_always_need_io() {
        let o = VmObject::new(ObjectId(1), 4, Backing::File);
        assert!(o.fault_needs_io(PageOffset(0)));
    }

    #[test]
    fn anonymous_pages_need_io_only_after_pageout() {
        let mut o = VmObject::new(ObjectId(1), 4, Backing::Anonymous);
        assert!(!o.fault_needs_io(PageOffset(2)));
        o.paged_out.insert(2);
        assert!(o.fault_needs_io(PageOffset(2)));
        assert!(!o.fault_needs_io(PageOffset(3)));
    }
}

//! The simulated Mach kernel: fault path, frame pool and syscalls.
//!
//! [`Kernel`] owns the virtual clock, the frame table, all tasks and memory
//! objects, the paging device and the global page queues. Running it alone
//! gives the *unmodified Mach kernel* baseline of the paper's experiments;
//! `hipec-core` layers containers, the policy executor, the security checker
//! and the global frame manager on top of the hooks exposed here
//! ([`AccessOutcome::NeedsPolicy`], [`Kernel::complete_policy_fault`],
//! [`Kernel::take_free_frames`], …).

use hipec_disk::{DeviceParams, DiskFault, FaultConfig, PagingDevice, PhasedFaultConfig};
use hipec_sim::stats::{Counter, Histogram};
use hipec_sim::{CostModel, SimDuration, SimTime, VirtualClock};

use crate::breaker::{BreakerTransition, CircuitBreaker};
use crate::device::BackingDevice;
use crate::frame::{FrameTable, QueueId};
use crate::object::{Backing, VmObject};
use crate::task::Task;
use crate::trace::{EventRing, VmEvent, DEFAULT_TRACE_CAPACITY};
use crate::types::{
    bytes_to_pages, DeviceId, FrameId, ObjectId, PageOffset, TaskId, VAddr, VmError,
};

/// Static configuration of a simulated machine.
#[derive(Debug, Clone)]
pub struct KernelParams {
    /// Physical frames (64 MB ⇒ 16 384).
    pub total_frames: u32,
    /// Frames permanently wired for kernel text/data.
    pub wired_frames: u32,
    /// The pageout daemon refills the free queue to this level.
    pub free_target: u64,
    /// A fault that finds fewer free frames than this triggers the daemon.
    pub free_min: u64,
    /// The daemon keeps this many pages on the inactive queue.
    pub inactive_target: u64,
    /// Paging-device kind and geometry.
    pub disk: DeviceParams,
    /// Virtual-time cost constants.
    pub cost: CostModel,
}

impl KernelParams {
    /// The paper's Acer Altos 10000: 64 MB of memory, 1994 SCSI paging disk.
    pub fn paper_64mb() -> Self {
        KernelParams {
            total_frames: 16_384,
            wired_frames: 1_024,
            free_target: 256,
            free_min: 64,
            inactive_target: 1_024,
            disk: DeviceParams::Disk(hipec_disk::DiskParams::paper_scsi()),
            cost: CostModel::acer_altos_486(),
        }
    }

    /// The paper machine, paging against the §6 flash extension instead of
    /// the disk.
    pub fn paper_64mb_flash() -> Self {
        let mut p = KernelParams::paper_64mb();
        p.disk = DeviceParams::Flash(hipec_disk::FlashParams::early_flash_card());
        p
    }

    /// A machine with exactly `pageable` pageable frames (plus wired kernel
    /// overhead), for experiments that constrain resident-set size.
    pub fn with_pageable_frames(pageable: u32) -> Self {
        let mut p = KernelParams::paper_64mb();
        p.total_frames = pageable + p.wired_frames;
        p
    }
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams::paper_64mb()
    }
}

/// How an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Translation present; no fault.
    Hit,
    /// Page was resident but unmapped in this task.
    MinorFault,
    /// Fresh anonymous page, zero-filled.
    ZeroFill,
    /// Page read from the paging device.
    PageIn,
}

/// The result of a completed access.
#[derive(Debug, Clone, Copy)]
pub struct AccessResult {
    /// How the access resolved.
    pub kind: AccessKind,
    /// If the access started a device read, the completion instant. The
    /// kernel does **not** advance its clock to this time — single-job
    /// drivers fast-forward, multi-job drivers overlap other work.
    pub io_until: Option<SimTime>,
}

/// A fault inside a HiPEC-controlled region, to be resolved by the policy
/// executor in `hipec-core`.
#[derive(Debug, Clone, Copy)]
pub struct PolicyFaultInfo {
    /// Faulting task.
    pub task: TaskId,
    /// Faulting virtual page.
    pub vpage: u64,
    /// Backing object.
    pub object: ObjectId,
    /// Page within the object.
    pub offset: PageOffset,
    /// True for write accesses.
    pub write: bool,
    /// The container key attached to the object.
    pub container: u32,
}

/// Outcome of [`Kernel::access`].
#[derive(Debug, Clone, Copy)]
pub enum AccessOutcome {
    /// The kernel resolved the access.
    Done(AccessResult),
    /// The page belongs to a HiPEC region; the caller must run the policy
    /// and then call [`Kernel::complete_policy_fault`].
    NeedsPolicy(PolicyFaultInfo),
}

/// A dirty page in flight to the paging device.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InflightFlush {
    pub done: SimTime,
    pub frame: FrameId,
    /// The device reported the write torn; it is re-issued when reaped.
    pub torn: bool,
    /// Write submissions so far (the initial one counts).
    pub attempts: u8,
    /// The draining device this flush was re-homed from, if any. Re-homed
    /// flushes carry drained data and are exempt from the retry budget.
    pub rehomed_from: Option<DeviceId>,
}

/// Retry-queue tag: the frame being re-flushed and how many submissions it
/// has burned so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryTag {
    /// The busy frame awaiting a successful write-back.
    pub frame: FrameId,
    /// Write submissions so far.
    pub attempts: u8,
    /// The draining (or dead) device this retry was re-homed from, if any.
    /// Re-homed retries carry the drained page's only copy, so they are
    /// exempt from [`Kernel::flush_retry_budget`] — they re-queue until
    /// the surviving device accepts the write.
    pub rehomed_from: Option<DeviceId>,
}

/// The submission allowance of one [`Kernel::pump`] call, shared by every
/// device's full-speed re-issue and migration loops (see
/// [`Kernel::pump_submit_budget`]). Tracks how many parked submissions the
/// exhausted budget left waiting, for the deferral stat and trace event.
pub(crate) struct PumpBudget {
    /// Submissions remaining in this pump call.
    pub(crate) left: u32,
    /// Parked entries a submission loop walked away from because the
    /// budget ran out (they stay queued for the next pump call).
    pub(crate) deferred: u64,
}

/// A write-back that exhausted its retry budget: the page's data is lost.
///
/// The frame has already been freed; the HiPEC layer drains these via
/// [`Kernel::take_dead_flushes`] and surfaces a device fault to the owning
/// container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadFlush {
    /// The device whose faults exhausted the budget.
    pub device: DeviceId,
    /// The frame that was carrying the page (already back on the free queue).
    pub frame: FrameId,
    /// The object the page belonged to.
    pub object: ObjectId,
    /// The page within the object.
    pub offset: PageOffset,
    /// The fault that exhausted the budget.
    pub fault: DiskFault,
}

/// The simulated kernel.
pub struct Kernel {
    /// The virtual clock; advanced by every charged operation.
    pub clock: VirtualClock,
    /// Cost constants.
    pub cost: CostModel,
    /// The frame table and all page queues.
    pub frames: FrameTable,
    /// Global free queue.
    pub free_q: QueueId,
    /// Global active queue (default-pool pages).
    pub active_q: QueueId,
    /// Global inactive queue.
    pub inactive_q: QueueId,
    /// When true, every fault pays the HiPEC region check the paper adds to
    /// the fault handler (set by the HiPEC kernel wrapper).
    pub hipec_check_enabled: bool,
    /// Event counters.
    pub stats: Counter,
    /// Latency distribution of completed faults (trap to resolution,
    /// including any device wait).
    pub fault_latency: Histogram,
    /// Structured event trace of the VM layer (virtual-time stamped; see
    /// [`crate::trace`]). Recording is free of clock charges, so it never
    /// perturbs the simulation.
    pub trace: EventRing<VmEvent>,
    /// Write submissions a single dirty page may burn (initial + retries)
    /// before its flush is abandoned and surfaced as a [`DeadFlush`].
    pub flush_retry_budget: u8,
    /// Write submissions (torn-retry re-issues plus migration copies) one
    /// [`Kernel::pump`] call may make across the whole device table. Reaps
    /// are never budgeted — claiming a due completion is always pure
    /// progress — and neither are degraded probes, which the breaker
    /// already gates to a bounded burst per backoff window. The budget
    /// bounds only the full-speed submission loops, so a device with
    /// thousands of parked writes spreads them over several pump calls
    /// instead of monopolising one.
    pub pump_submit_budget: u32,
    pub(crate) objects: Vec<VmObject>,
    pub(crate) tasks: Vec<Task>,
    /// The backing-device table. Entry 0 is built from
    /// [`KernelParams::disk`] and always exists; further entries are added
    /// with [`Kernel::add_device`]. Each entry owns its paging device,
    /// extent map, circuit breaker, in-flight list and retry queue.
    pub(crate) devices: Vec<BackingDevice>,
    pub(crate) dead_flushes: Vec<DeadFlush>,
    pub(crate) free_target: u64,
    pub(crate) free_min: u64,
    pub(crate) inactive_target: u64,
}

impl Kernel {
    /// Boots a machine: wires the kernel's frames, frees the rest.
    pub fn new(params: KernelParams) -> Self {
        let mut frames = FrameTable::new(params.total_frames);
        let free_q = frames.new_queue(false);
        let active_q = frames.new_queue(false);
        let inactive_q = frames.new_queue(false);
        for i in 0..params.total_frames {
            if i < params.wired_frames {
                frames.frame_mut(FrameId(i)).expect("frame exists").wired = true;
            } else {
                frames
                    .enqueue_tail(free_q, FrameId(i))
                    .expect("fresh frame is unqueued");
            }
        }
        let devices = vec![BackingDevice::new(DeviceId(0), &params.disk)];
        Kernel {
            clock: VirtualClock::new(),
            cost: params.cost,
            frames,
            free_q,
            active_q,
            inactive_q,
            hipec_check_enabled: false,
            stats: Counter::new(),
            fault_latency: Histogram::new(),
            trace: EventRing::new(DEFAULT_TRACE_CAPACITY),
            flush_retry_budget: 8,
            pump_submit_budget: 64,
            objects: Vec::new(),
            tasks: Vec::new(),
            devices,
            dead_flushes: Vec::new(),
            free_target: params.free_target,
            free_min: params.free_min,
            inactive_target: params.inactive_target,
        }
    }

    /// Adds a backing device to the table, returning its id. Regions bind
    /// to it via [`Kernel::create_object_on`].
    pub fn add_device(&mut self, params: DeviceParams) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(BackingDevice::new(id, &params));
        id
    }

    /// Number of configured backing devices (≥ 1).
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The device table, in id order (for audits and metrics snapshots).
    pub fn devices_iter(&self) -> impl Iterator<Item = &BackingDevice> {
        self.devices.iter()
    }

    /// One device-table entry.
    pub fn backing_device(&self, dev: DeviceId) -> Result<&BackingDevice, VmError> {
        self.devices
            .get(dev.0 as usize)
            .ok_or(VmError::NoSuchDevice(dev))
    }

    /// The circuit breaker of device `dev` (device 0 always exists).
    ///
    /// # Panics
    /// If `dev` is not in the device table.
    pub fn breaker(&self, dev: DeviceId) -> &CircuitBreaker {
        &self.devices[dev.0 as usize].breaker
    }

    /// Mutable breaker access, for tests and tooling that pre-condition a
    /// device's health state.
    ///
    /// # Panics
    /// If `dev` is not in the device table.
    pub fn breaker_mut(&mut self, dev: DeviceId) -> &mut CircuitBreaker {
        &mut self.devices[dev.0 as usize].breaker
    }

    /// True if any device's breaker is not closed (some write-back pipeline
    /// is degraded).
    pub fn any_breaker_open(&self) -> bool {
        self.devices.iter().any(|d| !d.breaker.is_closed())
    }

    /// The backing device `object` is bound to.
    pub fn device_of(&self, object: ObjectId) -> Result<DeviceId, VmError> {
        Ok(self.object(object)?.device)
    }

    /// Advances the clock by `d` (a charged CPU cost).
    pub fn charge(&mut self, d: SimDuration) {
        self.clock.advance(d);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Records a trace event. Recording charges no virtual time and does
    /// not allocate; with the `trace` feature compiled out it is a no-op.
    #[inline]
    pub(crate) fn emit(&mut self, event: VmEvent) {
        #[cfg(feature = "trace")]
        self.trace.push(self.clock.now(), event);
        #[cfg(not(feature = "trace"))]
        let _ = event;
    }

    /// Feeds one write-submission outcome (`ok` = accepted and not torn)
    /// to device `di`'s circuit breaker, emitting any resulting transition.
    pub(crate) fn breaker_record_write(&mut self, di: usize, ok: bool) {
        let now = self.clock.now();
        let device = self.devices[di].id;
        match self.devices[di].breaker.record(now, ok) {
            BreakerTransition::Tripped => {
                self.stats.bump("breaker_trips");
                let ewma_milli = self.devices[di].breaker.ewma_milli();
                self.emit(VmEvent::BreakerTrip { device, ewma_milli });
            }
            BreakerTransition::Probed { ok } => {
                self.emit(VmEvent::BreakerProbe { device, ok });
            }
            BreakerTransition::Closed => {
                self.stats.bump("breaker_closes");
                let ewma_milli = self.devices[di].breaker.ewma_milli();
                self.emit(VmEvent::BreakerClose { device, ewma_milli });
            }
            BreakerTransition::Exhausted => {
                // The backoff budget is spent: flag the entry for
                // permanent-failure escalation. The escalation itself (the
                // Dead transition and forced drain) runs at the top of the
                // next pump, outside the re-issue loops that call here.
                self.stats.bump("breaker_exhausted");
                self.devices[di].dead_pending = true;
                self.emit(VmEvent::BreakerProbe { device, ok: false });
            }
            BreakerTransition::None => {}
        }
    }

    /// Feeds a read outcome to device `di`'s breaker. Reads share the
    /// write path's scoreboard in every breaker state: while closed they
    /// move the score (so a device failing only reads still trips), and
    /// while open or half-open a read outcome counts as a probe alongside
    /// the gated write probes (so clean reads help close the breaker).
    pub(crate) fn breaker_record_read(&mut self, di: usize, ok: bool) {
        self.breaker_record_write(di, ok);
    }

    /// Frames on the global free queue.
    pub fn free_count(&self) -> u64 {
        self.frames
            .queue_len(self.free_q)
            .expect("free queue exists")
    }

    /// Frames on the global inactive queue.
    pub fn inactive_count(&self) -> u64 {
        self.frames
            .queue_len(self.inactive_q)
            .expect("inactive queue exists")
    }

    /// Frames on the global active queue.
    pub fn active_count(&self) -> u64 {
        self.frames
            .queue_len(self.active_q)
            .expect("active queue exists")
    }

    /// The pageout daemon's free-queue refill level.
    pub fn free_target(&self) -> u64 {
        self.free_target
    }

    /// The daemon's inactive-queue target.
    pub fn inactive_target(&self) -> u64 {
        self.inactive_target
    }

    // --- Task and object management ----------------------------------------

    /// Creates an empty task.
    pub fn create_task(&mut self) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task::new(id));
        id
    }

    /// Creates a memory object bound to device 0. File-backed objects get
    /// a disk extent now.
    pub fn create_object(
        &mut self,
        size_pages: u64,
        backing: Backing,
    ) -> Result<ObjectId, VmError> {
        self.create_object_on(DeviceId(0), size_pages, backing)
    }

    /// Creates a memory object bound to `device`: every page-in, write-back
    /// and swap extent of this object routes to that device. File-backed
    /// objects get a disk extent on it now.
    pub fn create_object_on(
        &mut self,
        device: DeviceId,
        size_pages: u64,
        backing: Backing,
    ) -> Result<ObjectId, VmError> {
        let di = device.0 as usize;
        if di >= self.devices.len() {
            return Err(VmError::NoSuchDevice(device));
        }
        if !self.devices[di].is_active() {
            return Err(VmError::DeviceUnavailable(device));
        }
        let id = ObjectId(self.objects.len() as u32);
        if backing == Backing::File {
            self.devices[di].backing.allocate(id.0 as u64, size_pages)?;
        }
        let mut object = VmObject::new(id, size_pages, backing);
        object.device = device;
        self.objects.push(object);
        Ok(id)
    }

    /// Maps `pages` of `object` (starting at `object_offset`) into `task` at
    /// a kernel-chosen address.
    pub fn map_object(
        &mut self,
        task: TaskId,
        object: ObjectId,
        object_offset: u64,
        pages: u64,
    ) -> Result<VAddr, VmError> {
        self.object(object)?;
        self.task_mut(task)?
            .map
            .insert_anywhere(pages, object, object_offset)
    }

    /// `vm_allocate`: a fresh anonymous region of `bytes` (device 0).
    pub fn vm_allocate(&mut self, task: TaskId, bytes: u64) -> Result<(VAddr, ObjectId), VmError> {
        self.vm_allocate_on(DeviceId(0), task, bytes)
    }

    /// `vm_allocate` with the region's swap routed to `device`.
    pub fn vm_allocate_on(
        &mut self,
        device: DeviceId,
        task: TaskId,
        bytes: u64,
    ) -> Result<(VAddr, ObjectId), VmError> {
        let pages = bytes_to_pages(bytes);
        let object = self.create_object_on(device, pages, Backing::Anonymous)?;
        let addr = self.map_object(task, object, 0, pages)?;
        self.charge(self.cost.null_syscall);
        Ok((addr, object))
    }

    /// `vm_map`: maps a file-like object of `bytes` into the task (device 0).
    pub fn vm_map(&mut self, task: TaskId, bytes: u64) -> Result<(VAddr, ObjectId), VmError> {
        self.vm_map_on(DeviceId(0), task, bytes)
    }

    /// `vm_map` with the file extent allocated on `device`.
    pub fn vm_map_on(
        &mut self,
        device: DeviceId,
        task: TaskId,
        bytes: u64,
    ) -> Result<(VAddr, ObjectId), VmError> {
        let pages = bytes_to_pages(bytes);
        let object = self.create_object_on(device, pages, Backing::File)?;
        let addr = self.map_object(task, object, 0, pages)?;
        self.charge(self.cost.null_syscall);
        Ok((addr, object))
    }

    /// `vm_deallocate`: tears down the region starting at `addr`, discarding
    /// its contents. Resident frames (including dirty ones — the data is
    /// being destroyed, so nothing is flushed) return to the global free
    /// pool. Returns the number of frames freed.
    ///
    /// The region must not be under HiPEC control (the HiPEC kernel drains
    /// the container first and then calls this).
    pub fn vm_deallocate(&mut self, task: TaskId, addr: VAddr) -> Result<u64, VmError> {
        let entry = self
            .task_mut(task)?
            .map
            .remove(addr)
            .ok_or(VmError::UnmappedAddress(task, addr))?;
        let object = entry.object;
        let mut resident: Vec<FrameId> = self.object(object)?.resident.values().copied().collect();
        // The residency map is a HashMap; sort so the freed frames join the
        // free queue in a replay-stable order.
        resident.sort_unstable();
        let mut freed = 0;
        for frame in resident {
            self.unmap_frame(frame)?;
            {
                let f = self.frames.frame_mut(frame)?;
                f.owner = None;
                f.ref_bit = false;
                f.mod_bit = false; // contents discarded, not flushed
            }
            if self.frames.queue_of(frame)?.is_some() {
                self.frames.remove(frame)?;
            }
            self.frames.enqueue_tail(self.free_q, frame)?;
            freed += 1;
        }
        self.object_mut(object)?.resident.clear();
        self.charge(self.cost.null_syscall);
        self.stats.add("deallocated_frames", freed);
        Ok(freed)
    }

    /// Immutable object access.
    pub fn object(&self, id: ObjectId) -> Result<&VmObject, VmError> {
        self.objects
            .get(id.0 as usize)
            .ok_or(VmError::NoSuchObject(id))
    }

    /// Mutable object access.
    pub fn object_mut(&mut self, id: ObjectId) -> Result<&mut VmObject, VmError> {
        self.objects
            .get_mut(id.0 as usize)
            .ok_or(VmError::NoSuchObject(id))
    }

    /// Immutable task access.
    pub fn task(&self, id: TaskId) -> Result<&Task, VmError> {
        self.tasks.get(id.0 as usize).ok_or(VmError::NoSuchTask(id))
    }

    /// Mutable task access.
    pub fn task_mut(&mut self, id: TaskId) -> Result<&mut Task, VmError> {
        self.tasks
            .get_mut(id.0 as usize)
            .ok_or(VmError::NoSuchTask(id))
    }

    /// Read-only view of the primary paging device (device 0).
    pub fn device(&self) -> &PagingDevice {
        &self.devices[0].disk
    }

    /// Read-only view of device 0's disk statistics (zeroed for flash
    /// devices).
    pub fn disk_stats(&self) -> hipec_disk::model::DiskStats {
        self.devices[0]
            .disk
            .as_disk()
            .map(|d| d.stats())
            .unwrap_or_default()
    }

    // --- The access / fault path --------------------------------------------

    /// Performs one memory access at `addr` by `task`.
    ///
    /// Resident accesses cost [`CostModel::mem_touch`]. Faults charge the
    /// fault path; faults inside HiPEC regions return
    /// [`AccessOutcome::NeedsPolicy`] for `hipec-core` to resolve.
    pub fn access(
        &mut self,
        task: TaskId,
        addr: VAddr,
        write: bool,
    ) -> Result<AccessOutcome, VmError> {
        let vpage = addr.vpage();
        if let Some(frame) = self.task(task)?.translate(vpage) {
            self.frames.touch(frame, write)?;
            self.charge(self.cost.mem_touch);
            self.stats.bump("hits");
            return Ok(AccessOutcome::Done(AccessResult {
                kind: AccessKind::Hit,
                io_until: None,
            }));
        }

        // Fault.
        self.stats.bump("faults");
        let fault_start = self.now();
        self.charge(self.cost.fault_base);
        if self.hipec_check_enabled {
            self.charge(self.cost.hipec_region_check);
        }
        let entry = *self.task(task)?.map.lookup(task, addr)?;
        let offset = PageOffset(entry.object_page(vpage));
        let object = entry.object;
        // The per-object fault rate is the hot/cold signal for tier
        // rebalancing; it counts every fault kind, policy faults included.
        self.object_mut(object)?.fault_rate += 1;

        if let Some(frame) = self.object(object)?.lookup(offset) {
            // Minor fault: resident, just install the translation.
            self.pmap_enter(task, vpage, frame)?;
            self.charge(self.cost.pmap_enter);
            self.frames.touch(frame, write)?;
            self.stats.bump("minor_faults");
            let latency = self.now().since(fault_start);
            self.fault_latency.record(latency);
            self.emit(VmEvent::Fault {
                task,
                vpage,
                kind: AccessKind::MinorFault,
                write,
                latency,
            });
            return Ok(AccessOutcome::Done(AccessResult {
                kind: AccessKind::MinorFault,
                io_until: None,
            }));
        }

        if let Some(container) = self.object(object)?.container {
            return Ok(AccessOutcome::NeedsPolicy(PolicyFaultInfo {
                task,
                vpage,
                object,
                offset,
                write,
                container,
            }));
        }

        // Default pool: obtain a frame (running the pageout daemon if low).
        let frame = self.obtain_free_frame()?;
        let result = match self.fill_and_map(task, vpage, object, offset, frame, write) {
            Ok(r) => r,
            Err(e) => {
                // The device read failed (or the fill aborted) before the
                // frame was attached to anything: give it back so it cannot
                // leak off every queue.
                let _ = self.frames.enqueue_head(self.free_q, frame);
                return Err(e);
            }
        };
        // Default-pool pages live on the global active queue.
        self.frames.enqueue_tail(self.active_q, frame)?;
        self.charge(self.cost.queue_op);
        let end = result.io_until.unwrap_or_else(|| self.now());
        let latency = end.since(fault_start);
        self.fault_latency.record(latency);
        self.emit(VmEvent::Fault {
            task,
            vpage,
            kind: result.kind,
            write,
            latency,
        });
        Ok(AccessOutcome::Done(result))
    }

    /// Completes a HiPEC fault with the frame the policy chose.
    ///
    /// The frame must be clean and unowned (the policy evicted or flushed
    /// its previous content); it may already sit on a container queue.
    pub fn complete_policy_fault(
        &mut self,
        info: PolicyFaultInfo,
        frame: FrameId,
    ) -> Result<AccessResult, VmError> {
        debug_assert!(self.frames.frame(frame)?.owner.is_none());
        self.fill_and_map(
            info.task,
            info.vpage,
            info.object,
            info.offset,
            frame,
            info.write,
        )
    }

    /// Installs `frame` as (object, offset), filling it by zero-fill or
    /// device read, and maps it into the faulting task.
    fn fill_and_map(
        &mut self,
        task: TaskId,
        vpage: u64,
        object: ObjectId,
        offset: PageOffset,
        frame: FrameId,
        write: bool,
    ) -> Result<AccessResult, VmError> {
        let needs_io = self.object(object)?.fault_needs_io(offset);
        let (kind, io_until) = if needs_io {
            self.charge(self.cost.pagein_cpu);
            let device = self.object(object)?.device;
            let di = device.0 as usize;
            let loc = self.devices[di].backing.locate(object.0 as u64, offset.0)?;
            // Submit before mutating any frame/object state so an injected
            // device failure needs no rollback here.
            let now = self.clock.now();
            let done = match self.devices[di].disk.read(loc.lba, now) {
                Ok(done) => {
                    self.breaker_record_read(di, true);
                    // In virtual time a submission's completion instant is
                    // already known: record the read's service latency here.
                    #[cfg(feature = "metrics")]
                    self.devices[di].lat_read.record(done.since(now));
                    done
                }
                Err(fault) => {
                    self.breaker_record_read(di, false);
                    self.stats.bump("read_errors");
                    self.emit(VmEvent::ReadError {
                        device,
                        object,
                        offset: offset.0,
                    });
                    return Err(VmError::Device(fault));
                }
            };
            self.stats.bump("pageins");
            (AccessKind::PageIn, Some(done))
        } else {
            self.charge(self.cost.zero_fill);
            self.stats.bump("zero_fills");
            (AccessKind::ZeroFill, None)
        };
        {
            let f = self.frames.frame_mut(frame)?;
            f.owner = Some((object, offset));
            f.ref_bit = false;
            f.mod_bit = false;
        }
        self.object_mut(object)?.insert(offset, frame);
        self.pmap_enter(task, vpage, frame)?;
        self.charge(self.cost.pmap_enter);
        self.frames.touch(frame, write)?;
        Ok(AccessResult { kind, io_until })
    }

    fn pmap_enter(&mut self, task: TaskId, vpage: u64, frame: FrameId) -> Result<(), VmError> {
        self.task_mut(task)?.pmap.insert(vpage, frame);
        self.frames.frame_mut(frame)?.mappings.push((task, vpage));
        Ok(())
    }

    /// Removes every translation of `frame` and detaches it from its object.
    ///
    /// The frame must be clean ([`VmError::DirtyFrameFreed`] otherwise — the
    /// caller must flush first) and not busy.
    pub fn evict_frame(&mut self, frame: FrameId) -> Result<(), VmError> {
        if self.frames.frame(frame)?.busy {
            // An in-flight flush retains its owner so the completion (or a
            // torn-write retry) can find its backing block; evicting now
            // would orphan the write. Stale aliases to flushed frames land
            // here instead of corrupting the frame.
            return Err(VmError::FrameBusy(frame));
        }
        if self.frames.frame(frame)?.mod_bit {
            return Err(VmError::DirtyFrameFreed(frame));
        }
        self.unmap_frame(frame)?;
        if let Some((object, offset)) = self.frames.frame(frame)?.owner {
            self.object_mut(object)?.evict(offset);
        }
        let f = self.frames.frame_mut(frame)?;
        f.owner = None;
        f.ref_bit = false;
        Ok(())
    }

    /// Removes all pmap translations of `frame` (charging per mapping).
    pub fn unmap_frame(&mut self, frame: FrameId) -> Result<(), VmError> {
        let mappings = std::mem::take(&mut self.frames.frame_mut(frame)?.mappings);
        let n = mappings.len() as u64;
        for (task, vpage) in mappings {
            self.task_mut(task)?.pmap.remove(&vpage);
        }
        self.charge(self.cost.pmap_remove.saturating_mul(n));
        Ok(())
    }

    // --- Frame-pool interface for the global frame manager ------------------

    /// Takes `n` frames out of the global free pool (running the pageout
    /// daemon and waiting on in-flight flushes as needed). The returned
    /// frames are detached from every queue.
    pub fn take_free_frames(&mut self, n: u64) -> Result<Vec<FrameId>, VmError> {
        let mut out = Vec::with_capacity(n as usize);
        while (out.len() as u64) < n {
            match self.obtain_free_frame() {
                Ok(f) => out.push(f),
                Err(e) => {
                    // Undo: give back what we took.
                    for f in out {
                        let _ = self.frames.enqueue_head(self.free_q, f);
                    }
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Returns a clean, evicted frame to the global free pool.
    pub fn return_frame(&mut self, frame: FrameId) -> Result<(), VmError> {
        {
            let f = self.frames.frame(frame)?;
            if f.busy {
                return Err(VmError::FrameBusy(frame));
            }
            if f.mod_bit {
                return Err(VmError::DirtyFrameFreed(frame));
            }
        }
        // Free frames must be fully anonymous: detach any residual mapping
        // and queue membership before handing the frame to the pool.
        if self.frames.frame(frame)?.owner.is_some() {
            self.evict_frame(frame)?;
        }
        if self.frames.queue_of(frame)?.is_some() {
            self.frames.remove(frame)?;
        }
        self.frames.enqueue_tail(self.free_q, frame)
    }

    /// Bound on consecutive "dry" pumps [`Kernel::obtain_free_frame`] may
    /// burn — pumps taken with nothing in flight anywhere, only parked
    /// queues whose submissions keep being rejected. Derived from
    /// [`Kernel::flush_retry_budget`]: once every parked write has had a
    /// budget's worth of chances to get a submission through, the pool is
    /// genuinely dry and `OutOfFrames` is the honest answer.
    fn dry_pump_budget(&self) -> u32 {
        u32::from(self.flush_retry_budget)
    }

    /// One clean frame off the free queue, replenishing it if necessary.
    ///
    /// When the pool is empty the wait is event-driven off
    /// [`Kernel::next_flush_completion`], which covers every source of
    /// future frames: in-flight flushes, parked torn retries *and* the
    /// drain/migration traffic of an unplug — so a fault arriving
    /// mid-unplug blocks on the drain instead of spuriously reporting
    /// `OutOfFrames`. Pumps that find nothing in flight anywhere (each
    /// pump draws fresh fault decisions, so a few attempts normally get a
    /// rejected submission through) are bounded by
    /// [`Kernel::dry_pump_budget`] so a device rejecting every write
    /// still surfaces `OutOfFrames`.
    pub(crate) fn obtain_free_frame(&mut self) -> Result<FrameId, VmError> {
        if self.free_count() < self.free_min {
            self.pageout_scan()?;
        }
        let mut dry_pumps = 0u32;
        loop {
            if let Some(f) = self.frames.dequeue_head(self.free_q)? {
                self.charge(self.cost.queue_op);
                return Ok(f);
            }
            // Nothing free: wait for write-back (or migration) progress.
            let Some(due) = self.next_flush_completion() else {
                return Err(VmError::OutOfFrames {
                    requested: 1,
                    available: 0,
                });
            };
            let inflight = self
                .devices
                .iter()
                .any(|d| !d.inflight.is_empty() || !d.migr_inflight.is_empty());
            if !inflight {
                dry_pumps += 1;
                if dry_pumps > self.dry_pump_budget() {
                    return Err(VmError::OutOfFrames {
                        requested: 1,
                        available: 0,
                    });
                }
            }
            if due > self.clock.now() {
                self.clock.advance_to(due);
            }
            self.pump();
        }
    }

    /// Completes any in-flight flushes due by now, freeing their frames.
    ///
    /// Torn completions do not free their frame: the write is re-issued
    /// (FCFS through the retry queue) and the frame stays busy until a
    /// clean completion is reaped. A re-issue the device rejects outright
    /// stays queued for the next pump. Each page gets at most
    /// [`Kernel::flush_retry_budget`] submissions in total; past that the
    /// flush is abandoned — the page's data is lost, the frame returns to
    /// the free pool, and a [`DeadFlush`] is surfaced so the retry queue
    /// always drains even against a device rejecting every write.
    /// (Re-homed flushes from a draining device are the exception: they
    /// carry the drained page's only copy and re-queue without a budget.)
    ///
    /// The pump also drives the device-lifecycle machinery: migration
    /// copies queued by drains and tier rebalancing, pending
    /// permanent-failure escalations, and drain-completion detection.
    ///
    /// Devices are serviced in **pressure order**, not id order: each
    /// entry's [`BackingDevice::pressure`] score (due completions, ageing
    /// of the oldest claimable one, in-flight depth, parked backlog) is
    /// computed against the state at pump entry and the table is walked
    /// highest-score first, ties broken by ascending id. Combined with the
    /// per-call [`Kernel::pump_submit_budget`] this removes the
    /// head-of-line blocking of the old id-order walk: a storming device's
    /// thousand parked retries can no longer starve a healthy sibling's
    /// reap inside a single call. The score is a pure function of kernel
    /// state, so the weighted order — and everything downstream of it —
    /// is bit-identical across replays.
    pub fn pump(&mut self) {
        let now = self.clock.now();
        let mut order: Vec<(u64, usize)> = self
            .devices
            .iter()
            .enumerate()
            .map(|(di, d)| (d.pressure(now), di))
            .collect();
        order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut budget = PumpBudget {
            left: self.pump_submit_budget,
            deferred: 0,
        };
        for (_, di) in order {
            self.pump_device(di, &mut budget);
            self.pump_migration(di, &mut budget);
        }
        if budget.deferred > 0 {
            self.stats.bump("pump_budget_deferrals");
            self.emit(VmEvent::PumpDeferred {
                deferred: budget.deferred,
            });
        }
        self.process_dead_pending();
        self.finish_drains();
    }

    /// Reaps and re-issues on one device-table entry. Each device's
    /// breaker, in-flight window and retry queue are independent, so a
    /// storm on one device never stalls another's drain.
    fn pump_device(&mut self, di: usize, budget: &mut PumpBudget) {
        let now = self.clock.now();
        let device = self.devices[di].id;
        let mut done = Vec::new();
        self.devices[di].inflight.retain(|i| {
            if i.done <= now {
                done.push((i.frame, i.torn, i.attempts, i.rehomed_from));
                false
            } else {
                true
            }
        });
        for (frame, torn, attempts, rehomed_from) in done {
            if torn {
                self.stats.bump("torn_flushes");
                // A torn completion re-homes to the owning object's current
                // device: after a drain (or a tier migration) the object is
                // re-bound elsewhere, its extent allocated there, so the
                // retry writes the page to the store that now serves it.
                // Re-homed retries are budget-exempt — including a write
                // whose budget ran out while it was in flight and its
                // object was drained away: the page follows its object
                // instead of dying with the old device.
                let home = self
                    .frames
                    .frame(frame)
                    .ok()
                    .and_then(|f| f.owner)
                    .map(|(o, _)| self.objects[o.0 as usize].device)
                    .unwrap_or(device);
                if home == device && attempts >= self.flush_retry_budget && rehomed_from.is_none() {
                    self.abandon_flush(di, frame, attempts);
                    continue;
                }
                let (ri, rehomed_from) = if home != device {
                    self.stats.bump("retries_rehomed");
                    (home.0 as usize, Some(device))
                } else {
                    (di, rehomed_from)
                };
                let lba = self
                    .flush_target(ri, frame)
                    .expect("in-flight frames keep their owner");
                self.devices[ri].retry_q.push(
                    lba,
                    RetryTag {
                        frame,
                        attempts,
                        rehomed_from,
                    },
                );
                self.emit(VmEvent::TornRetry {
                    device: self.devices[ri].id,
                    frame,
                    attempt: attempts,
                });
                continue;
            }
            let f = self
                .frames
                .frame_mut(frame)
                .expect("inflight frames are valid");
            f.busy = false;
            f.owner = None;
            self.frames
                .enqueue_tail(self.free_q, frame)
                .expect("flushed frame is unqueued");
            self.stats.bump("flush_completions");
            self.emit(VmEvent::FlushComplete { device, frame });
        }
        // Re-issue torn writes (one attempt per entry per pump; a rejected
        // re-issue goes back on the queue until its budget runs out). While
        // the breaker is closed this drains the queue up to the pump call's
        // submission budget; once it trips mid-drain the rest waits for the
        // degraded path below.
        let mut still_torn = Vec::new();
        while self.devices[di].breaker.is_closed() {
            if !self.devices[di].retry_q.is_empty() && budget.left == 0 {
                budget.deferred += self.devices[di].retry_q.len() as u64;
                break;
            }
            let Some(pending) = self.devices[di].retry_q.pop_next(0, |_| 0) else {
                break;
            };
            budget.left -= 1;
            let RetryTag {
                frame,
                attempts,
                rehomed_from,
            } = pending.tag;
            let now = self.clock.now();
            match self.devices[di].disk.write(pending.lba, now) {
                Ok(c) => {
                    self.breaker_record_write(di, !c.torn);
                    #[cfg(feature = "metrics")]
                    self.devices[di].lat_torn_retry.record(c.done.since(now));
                    self.devices[di].inflight.push(InflightFlush {
                        done: c.done,
                        frame,
                        torn: c.torn,
                        attempts: attempts.saturating_add(1),
                        rehomed_from,
                    });
                    self.stats.bump("flush_retries");
                }
                Err(_) => {
                    self.breaker_record_write(di, false);
                    self.stats.bump("flush_retry_errors");
                    self.emit(VmEvent::RetryRejected {
                        device,
                        frame,
                        attempt: attempts,
                    });
                    let spent = attempts.saturating_add(1);
                    if spent >= self.flush_retry_budget && rehomed_from.is_none() {
                        self.abandon_flush(di, frame, spent);
                    } else {
                        still_torn.push((
                            pending.lba,
                            RetryTag {
                                frame,
                                attempts: spent,
                                rehomed_from,
                            },
                        ));
                    }
                }
            }
        }
        for (lba, tag) in still_torn {
            self.devices[di].retry_q.push(lba, tag);
        }
        // Degraded re-issue: at most one backoff-gated probe burst per pump,
        // bounded by the breaker's in-flight window. A failed probe goes
        // back to the queue *head* so the FCFS retry order is preserved.
        if !self.devices[di].breaker.is_closed() {
            while self.devices[di]
                .breaker
                .probe_due(self.clock.now(), self.devices[di].degraded_inflight())
            {
                let Some(pending) = self.devices[di].retry_q.pop_next(0, |_| 0) else {
                    break;
                };
                let RetryTag {
                    frame,
                    attempts,
                    rehomed_from,
                } = pending.tag;
                let now = self.clock.now();
                match self.devices[di].disk.write(pending.lba, now) {
                    Ok(c) => {
                        self.breaker_record_write(di, !c.torn);
                        #[cfg(feature = "metrics")]
                        self.devices[di].lat_torn_retry.record(c.done.since(now));
                        self.devices[di].inflight.push(InflightFlush {
                            done: c.done,
                            frame,
                            torn: c.torn,
                            attempts: attempts.saturating_add(1),
                            rehomed_from,
                        });
                        self.stats.bump("flush_retries");
                    }
                    Err(_) => {
                        self.breaker_record_write(di, false);
                        self.stats.bump("flush_retry_errors");
                        self.emit(VmEvent::RetryRejected {
                            device,
                            frame,
                            attempt: attempts,
                        });
                        let spent = attempts.saturating_add(1);
                        if spent >= self.flush_retry_budget && rehomed_from.is_none() {
                            self.abandon_flush(di, frame, spent);
                        } else {
                            self.devices[di].retry_q.push_front(
                                pending.lba,
                                RetryTag {
                                    frame,
                                    attempts: spent,
                                    rehomed_from,
                                },
                            );
                        }
                    }
                }
            }
            if !self.devices[di].retry_q.is_empty() {
                self.devices[di].breaker.note_deferred();
            }
        }
    }

    /// Gives up on a flush whose retry budget ran out: the page's data is
    /// lost (it was evicted when the flush started), the frame is scrubbed
    /// and returned to the free pool, and a [`DeadFlush`] records the loss
    /// for the HiPEC layer to attribute.
    fn abandon_flush(&mut self, di: usize, frame: FrameId, attempts: u8) {
        let device = self.devices[di].id;
        let (object, offset) = self
            .frames
            .frame(frame)
            .expect("retry frames are valid")
            .owner
            .expect("in-flight frames keep their owner");
        let lba = self.devices[di]
            .backing
            .locate(object.0 as u64, offset.0)
            .map(|l| l.lba)
            .unwrap_or(hipec_disk::Lba(0));
        {
            let f = self
                .frames
                .frame_mut(frame)
                .expect("retry frames are valid");
            f.busy = false;
            f.owner = None;
            f.mod_bit = false;
            f.ref_bit = false;
        }
        self.frames
            .enqueue_tail(self.free_q, frame)
            .expect("abandoned frame is unqueued");
        self.stats.bump("flush_abandoned");
        self.dead_flushes.push(DeadFlush {
            device,
            frame,
            object,
            offset,
            fault: DiskFault::WriteError(lba),
        });
        self.emit(VmEvent::FlushAbandoned {
            device,
            frame,
            attempts,
        });
    }

    /// Drains the record of abandoned flushes (data-loss events) since the
    /// last call.
    pub fn take_dead_flushes(&mut self) -> Vec<DeadFlush> {
        std::mem::take(&mut self.dead_flushes)
    }

    /// The backing-store block an in-flight flush on device `di` writes to
    /// (derived from the frame's retained owner).
    fn flush_target(&self, di: usize, frame: FrameId) -> Result<hipec_disk::Lba, VmError> {
        let (object, offset) = self
            .frames
            .frame(frame)?
            .owner
            .ok_or(VmError::FrameNotQueued(frame))?;
        Ok(self.devices[di]
            .backing
            .locate(object.0 as u64, offset.0)?
            .lba)
    }

    /// Installs a deterministic fault-injection plan on device 0.
    pub fn set_fault_plan(&mut self, cfg: FaultConfig) {
        self.set_fault_plan_on(DeviceId(0), cfg);
    }

    /// Installs a deterministic fault-injection plan on device `dev`.
    ///
    /// # Panics
    /// If `dev` is not in the device table.
    pub fn set_fault_plan_on(&mut self, dev: DeviceId, cfg: FaultConfig) {
        self.devices[dev.0 as usize].disk.set_fault_plan(cfg);
    }

    /// Installs a phased fault plan (time-windowed by operation index) on
    /// device 0.
    pub fn set_phased_fault_plan(&mut self, cfg: PhasedFaultConfig) {
        self.set_phased_fault_plan_on(DeviceId(0), cfg);
    }

    /// Installs a phased fault plan on device `dev`.
    ///
    /// # Panics
    /// If `dev` is not in the device table.
    pub fn set_phased_fault_plan_on(&mut self, dev: DeviceId, cfg: PhasedFaultConfig) {
        self.devices[dev.0 as usize].disk.set_phased_fault_plan(cfg);
    }

    /// Earliest virtual instant at which pumping makes write-back progress
    /// (for event-driven drivers): the minimum over the per-device
    /// progress instants — each device's next in-flight completion, or,
    /// when it only has torn retries parked, its breaker's next probe
    /// window (now, if that breaker is closed). `None` only once every
    /// write-back lifecycle on every device has closed.
    pub fn next_flush_completion(&self) -> Option<SimTime> {
        let now = self.clock.now();
        self.devices
            .iter()
            .filter_map(|d| d.next_progress(now))
            .min()
    }

    // --- Read-only state inspection (invariant checkers, audits) ------------

    /// Frames with an in-flight flush (completion not yet reaped), across
    /// every device.
    pub fn inflight_frames(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.devices
            .iter()
            .flat_map(|d| d.inflight.iter().map(|i| i.frame))
    }

    /// Frames whose torn flush awaits re-issue, across every device.
    pub fn retry_frames(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.devices
            .iter()
            .flat_map(|d| d.retry_q.iter().map(|p| p.tag.frame))
    }

    /// Lifetime (pushes, pops) of the torn-write retry queues, summed
    /// across every device.
    pub fn retry_queue_counters(&self) -> (u64, u64) {
        self.devices.iter().fold((0, 0), |(pushes, pops), d| {
            (pushes + d.retry_q.pushes(), pops + d.retry_q.pops())
        })
    }

    /// Abandoned flushes not yet drained by [`Kernel::take_dead_flushes`].
    pub fn pending_dead_flushes(&self) -> usize {
        self.dead_flushes.len()
    }

    /// All VM objects, for state audits.
    pub fn objects_iter(&self) -> impl Iterator<Item = &VmObject> {
        self.objects.iter()
    }

    /// All tasks, for state audits.
    pub fn tasks_iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PAGE_SIZE;

    fn small_kernel() -> Kernel {
        let mut p = KernelParams::paper_64mb();
        p.total_frames = 128;
        p.wired_frames = 8;
        p.free_target = 16;
        p.free_min = 8;
        p.inactive_target = 24;
        Kernel::new(p)
    }

    #[test]
    fn boot_frees_unwired_frames() {
        let k = small_kernel();
        assert_eq!(k.free_count(), 120);
        assert_eq!(k.active_count(), 0);
    }

    #[test]
    fn zero_fill_fault_then_hit() {
        let mut k = small_kernel();
        let t = k.create_task();
        let (addr, _) = k.vm_allocate(t, 4 * PAGE_SIZE).expect("allocate");
        let before = k.now();
        let r = match k.access(t, addr, false).expect("access") {
            AccessOutcome::Done(r) => r,
            AccessOutcome::NeedsPolicy(_) => panic!("anonymous region is not HiPEC"),
        };
        assert_eq!(r.kind, AccessKind::ZeroFill);
        assert!(r.io_until.is_none());
        // Fault cost ≈ fault_base + zero_fill + pmap_enter (+ queue op).
        let elapsed = k.now().since(before);
        assert!(elapsed >= k.cost.fault_zero_fill());
        // Second touch is a hit.
        let r = match k.access(t, addr, true).expect("access") {
            AccessOutcome::Done(r) => r,
            _ => unreachable!(),
        };
        assert_eq!(r.kind, AccessKind::Hit);
        assert_eq!(k.stats.get("hits"), 1);
        assert_eq!(k.stats.get("faults"), 1);
    }

    #[test]
    fn file_fault_reads_from_disk() {
        let mut k = small_kernel();
        let t = k.create_task();
        let (addr, _) = k.vm_map(t, 2 * PAGE_SIZE).expect("map");
        let r = match k.access(t, addr, false).expect("access") {
            AccessOutcome::Done(r) => r,
            _ => unreachable!(),
        };
        assert_eq!(r.kind, AccessKind::PageIn);
        let done = r.io_until.expect("page-in has device time");
        assert!(done > k.now());
        assert_eq!(k.stats.get("pageins"), 1);
    }

    #[test]
    fn each_page_faults_once_when_memory_is_ample() {
        let mut k = small_kernel();
        let t = k.create_task();
        let pages = 40u64;
        let (addr, _) = k.vm_allocate(t, pages * PAGE_SIZE).expect("allocate");
        for round in 0..3 {
            for p in 0..pages {
                k.access(t, VAddr(addr.0 + p * PAGE_SIZE), false)
                    .expect("access");
            }
            if round == 0 {
                assert_eq!(k.stats.get("faults"), pages);
            }
        }
        assert_eq!(k.stats.get("faults"), pages, "no replacement needed");
        assert_eq!(k.stats.get("hits"), 2 * pages);
    }

    #[test]
    fn replacement_kicks_in_under_pressure() {
        let mut k = small_kernel(); // 120 pageable frames
        let t = k.create_task();
        let pages = 200u64; // working set larger than memory
        let (addr, _) = k.vm_allocate(t, pages * PAGE_SIZE).expect("allocate");
        for p in 0..pages {
            k.access(t, VAddr(addr.0 + p * PAGE_SIZE), true)
                .expect("access");
        }
        assert_eq!(k.stats.get("faults"), pages);
        assert!(k.stats.get("pageouts") > 0, "dirty pages must be flushed");
        // A second sequential sweep with LRU-ish FIFO replacement faults again.
        let before = k.stats.get("faults");
        for p in 0..pages {
            k.access(t, VAddr(addr.0 + p * PAGE_SIZE), false)
                .expect("access");
        }
        assert!(k.stats.get("faults") > before, "cyclic sweep must re-fault");
    }

    #[test]
    fn unmapped_access_is_an_error() {
        let mut k = small_kernel();
        let t = k.create_task();
        assert!(matches!(
            k.access(t, VAddr(0x100), false),
            Err(VmError::UnmappedAddress(_, _))
        ));
    }

    #[test]
    fn take_and_return_frames() {
        let mut k = small_kernel();
        let before = k.free_count();
        let taken = k.take_free_frames(10).expect("available");
        assert_eq!(taken.len(), 10);
        assert_eq!(k.free_count(), before - 10);
        for f in &taken {
            assert!(k.frames.queue_of(*f).expect("valid").is_none());
        }
        for f in taken {
            k.return_frame(f).expect("clean return");
        }
        assert_eq!(k.free_count(), before);
    }

    #[test]
    fn busy_frames_cannot_be_evicted_or_returned() {
        let mut k = small_kernel();
        let t = k.create_task();
        let (addr, _) = k.vm_allocate(t, PAGE_SIZE).expect("allocate");
        k.access(t, addr, true).expect("dirty the page");
        let frame = k
            .task(t)
            .expect("task")
            .translate(addr.vpage())
            .expect("mapped");
        k.start_flush(frame).expect("flush starts");
        assert!(k.frames.frame(frame).expect("frame").busy);
        // A stale handle to the in-flight frame must bounce, not corrupt
        // the retained owner the completion path needs.
        assert_eq!(k.evict_frame(frame), Err(VmError::FrameBusy(frame)));
        assert_eq!(k.return_frame(frame), Err(VmError::FrameBusy(frame)));
        let done = k.next_flush_completion().expect("in flight");
        k.clock.advance_to(done);
        k.pump();
        assert!(!k.frames.frame(frame).expect("frame").busy);
    }

    #[test]
    fn read_only_faults_trip_and_clean_reads_close_the_breaker() {
        let mut k = small_kernel();
        let t = k.create_task();
        let (addr, _) = k.vm_map(t, 16 * PAGE_SIZE).expect("map");
        // A device failing *only* reads: the breaker must still trip.
        k.set_fault_plan(FaultConfig {
            seed: 9,
            read_error_permille: 1000,
            write_error_permille: 0,
            delay_permille: 0,
            max_delay: SimDuration::ZERO,
            torn_permille: 0,
        });
        for p in 0..3 {
            let r = k.access(t, VAddr(addr.0 + p * PAGE_SIZE), false);
            assert!(matches!(r, Err(VmError::Device(_))), "read must fail");
        }
        assert!(
            !k.breaker(DeviceId(0)).is_closed(),
            "three failed reads must trip the breaker"
        );
        assert_eq!(k.stats.get("breaker_trips"), 1);
        // The device heals: clean reads serve as probes and close the
        // breaker again without a single write.
        k.set_fault_plan(FaultConfig {
            seed: 9,
            read_error_permille: 0,
            write_error_permille: 0,
            delay_permille: 0,
            max_delay: SimDuration::ZERO,
            torn_permille: 0,
        });
        for p in 0..16 {
            if k.breaker(DeviceId(0)).is_closed() {
                break;
            }
            k.access(t, VAddr(addr.0 + p * PAGE_SIZE), false)
                .expect("clean read");
        }
        assert!(
            k.breaker(DeviceId(0)).is_closed(),
            "clean reads must close the breaker via probing"
        );
        assert_eq!(k.stats.get("breaker_closes"), 1);
        assert_eq!(k.device().stats().writes, 0, "no write ever probed");
    }

    #[test]
    fn flushes_route_to_the_owning_device() {
        let mut k = small_kernel();
        let dev1 = k.add_device(DeviceParams::default());
        assert_eq!(k.device_count(), 2);
        let t = k.create_task();
        let (a0, o0) = k.vm_allocate(t, PAGE_SIZE).expect("dev0 region");
        let (a1, o1) = k.vm_allocate_on(dev1, t, PAGE_SIZE).expect("dev1 region");
        assert_eq!(k.device_of(o0).expect("bound"), DeviceId(0));
        assert_eq!(k.device_of(o1).expect("bound"), dev1);
        k.access(t, a0, true).expect("dirty dev0 page");
        k.access(t, a1, true).expect("dirty dev1 page");
        let f0 = k
            .task(t)
            .expect("task")
            .translate(a0.vpage())
            .expect("mapped");
        let f1 = k
            .task(t)
            .expect("task")
            .translate(a1.vpage())
            .expect("mapped");
        k.start_flush(f0).expect("flush to dev0");
        k.start_flush(f1).expect("flush to dev1");
        assert_eq!(
            k.backing_device(DeviceId(0)).expect("dev0").stats().writes,
            1
        );
        assert_eq!(k.backing_device(dev1).expect("dev1").stats().writes, 1);
        assert_eq!(k.backing_device(dev1).expect("dev1").inflight_depth(), 1);
        while let Some(done) = k.next_flush_completion() {
            k.clock.advance_to(done);
            k.pump();
        }
        assert_eq!(k.stats.get("flush_completions"), 2);
        assert_eq!(k.inflight_frames().count(), 0);
    }

    #[test]
    fn take_too_many_frames_fails_and_rolls_back() {
        let mut k = small_kernel();
        let before = k.free_count();
        assert!(k.take_free_frames(10_000).is_err());
        assert_eq!(k.free_count(), before, "partial takes are rolled back");
    }

    #[test]
    fn dirty_frame_cannot_be_returned() {
        let mut k = small_kernel();
        let t = k.create_task();
        let (addr, _) = k.vm_allocate(t, PAGE_SIZE).expect("allocate");
        k.access(t, addr, true).expect("dirtying write");
        let frame = k
            .task(t)
            .expect("task")
            .translate(addr.vpage())
            .expect("mapped");
        assert_eq!(k.return_frame(frame), Err(VmError::DirtyFrameFreed(frame)));
        assert_eq!(k.evict_frame(frame), Err(VmError::DirtyFrameFreed(frame)));
    }

    #[test]
    fn evict_frame_unmaps_and_detaches() {
        let mut k = small_kernel();
        let t = k.create_task();
        let (addr, obj) = k.vm_allocate(t, PAGE_SIZE).expect("allocate");
        k.access(t, addr, false).expect("read fault");
        let frame = k
            .task(t)
            .expect("task")
            .translate(addr.vpage())
            .expect("mapped");
        k.frames.remove(frame).expect("off the active queue");
        k.evict_frame(frame).expect("clean eviction");
        assert_eq!(k.task(t).expect("task").translate(addr.vpage()), None);
        assert_eq!(k.object(obj).expect("object").resident_count(), 0);
        assert!(k.frames.frame(frame).expect("frame").owner.is_none());
    }
}

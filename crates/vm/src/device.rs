//! The kernel's backing-device table.
//!
//! Mach 3.0's external-pager lineage routes each memory object to its own
//! pager; the single-disk kernel of earlier revisions collapsed that into
//! one global paging device, one write-back circuit breaker and one torn
//! -write retry queue — so one sick device degraded every container. A
//! [`BackingDevice`] restores the per-pager structure: each table entry
//! owns its paging device, its backing-store extent map, its circuit
//! breaker, its in-flight flush list and its retry queue. Objects bind to
//! a device at creation ([`crate::Kernel::create_object_on`]) and the
//! pageout pump routes every read, flush and retry to the owning entry,
//! so fault-plan storms on one device leave the others' write-back
//! pipelines untouched.

use hipec_disk::{BackingStore, DeviceParams, DiskQueue, PagingDevice};
use hipec_sim::{LatencyHistogram, SimTime};

use crate::breaker::CircuitBreaker;
use crate::kernel::{InflightFlush, RetryTag};
use crate::types::DeviceId;

/// One entry in the kernel's device table: a paging device plus all the
/// per-device write-back machinery (extent map, breaker, in-flight list,
/// torn-write retry queue).
#[derive(Debug)]
pub struct BackingDevice {
    pub(crate) id: DeviceId,
    pub(crate) disk: PagingDevice,
    pub(crate) backing: BackingStore,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) inflight: Vec<InflightFlush>,
    /// Torn flushes awaiting re-issue (FCFS — retry order is submission
    /// order; tags carry the frame and its spent attempts).
    pub(crate) retry_q: DiskQueue<RetryTag>,
    /// Completion latency of demand reads issued to this device. In the
    /// virtual-time simulation a submission's completion instant is known
    /// at issue, so latency is recorded at the submission site (behind
    /// the `metrics` feature; the storage is unconditional so snapshot
    /// shapes don't change).
    pub(crate) lat_read: LatencyHistogram,
    /// Completion latency of first-issue write-back flushes.
    pub(crate) lat_flush: LatencyHistogram,
    /// Completion latency of torn-write retry re-issues.
    pub(crate) lat_torn_retry: LatencyHistogram,
}

impl BackingDevice {
    /// Builds a fresh, fault-free table entry from device parameters.
    pub(crate) fn new(id: DeviceId, params: &DeviceParams) -> Self {
        BackingDevice {
            id,
            disk: params.build(),
            backing: BackingStore::new(params.capacity_pages()),
            breaker: CircuitBreaker::default(),
            inflight: Vec::new(),
            retry_q: DiskQueue::new(hipec_disk::QueueDiscipline::Fcfs),
            lat_read: LatencyHistogram::EMPTY,
            lat_flush: LatencyHistogram::EMPTY,
            lat_torn_retry: LatencyHistogram::EMPTY,
        }
    }

    /// This entry's id (its index in the device table).
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Read-only view of the paging device itself.
    pub fn device(&self) -> &PagingDevice {
        &self.disk
    }

    /// This device's error scoreboard.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Cumulative operation counters of the underlying device.
    pub fn stats(&self) -> hipec_disk::DeviceStats {
        self.disk.stats()
    }

    /// Write-backs submitted to this device and not yet reaped.
    pub fn inflight_depth(&self) -> usize {
        self.inflight.len()
    }

    /// Torn flushes parked on this device's retry queue.
    pub fn retry_depth(&self) -> usize {
        self.retry_q.len()
    }

    /// Lifetime (pushes, pops) of this device's retry queue.
    pub fn retry_counters(&self) -> (u64, u64) {
        (self.retry_q.pushes(), self.retry_q.pops())
    }

    /// Completion-latency histograms for this device, as `(read, flush,
    /// torn_retry)` — the snapshot surface `KernelStats` latency rows
    /// are assembled from. Empty when the `metrics` feature is off.
    pub fn latency(&self) -> (&LatencyHistogram, &LatencyHistogram, &LatencyHistogram) {
        (&self.lat_read, &self.lat_flush, &self.lat_torn_retry)
    }

    /// Earliest virtual instant at which pumping *this* device makes
    /// write-back progress: its next in-flight completion, or — when
    /// nothing is in flight but torn retries are parked — its breaker's
    /// next probe window (`now` if the breaker is closed). `None` once
    /// every write-back lifecycle on this device has closed.
    pub(crate) fn next_progress(&self, now: SimTime) -> Option<SimTime> {
        if let Some(done) = self.inflight.iter().map(|i| i.done).min() {
            return Some(done);
        }
        if self.retry_q.is_empty() {
            return None;
        }
        Some(if self.breaker.is_closed() {
            now
        } else {
            self.breaker.next_probe_at().max(now)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_entry_is_healthy_and_idle() {
        let d = BackingDevice::new(DeviceId(3), &DeviceParams::default());
        assert_eq!(d.id(), DeviceId(3));
        assert!(d.breaker().is_closed());
        assert_eq!(d.inflight_depth(), 0);
        assert_eq!(d.retry_depth(), 0);
        assert_eq!(d.retry_counters(), (0, 0));
        assert_eq!(d.stats(), hipec_disk::DeviceStats::default());
        assert_eq!(d.next_progress(SimTime::ZERO), None);
    }

    #[test]
    fn next_progress_prefers_inflight_over_retries() {
        let mut d = BackingDevice::new(DeviceId(0), &DeviceParams::default());
        let now = SimTime::from_ns(100);
        let done = SimTime::from_ns(5_000);
        d.inflight.push(InflightFlush {
            done,
            frame: crate::types::FrameId(1),
            torn: false,
            attempts: 1,
        });
        assert_eq!(d.next_progress(now), Some(done));
        d.inflight.clear();
        d.retry_q.push(
            hipec_disk::Lba(0),
            RetryTag {
                frame: crate::types::FrameId(1),
                attempts: 1,
            },
        );
        // Closed breaker: retries can be re-issued immediately.
        assert_eq!(d.next_progress(now), Some(now));
    }
}

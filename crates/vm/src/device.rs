//! The kernel's backing-device table.
//!
//! Mach 3.0's external-pager lineage routes each memory object to its own
//! pager; the single-disk kernel of earlier revisions collapsed that into
//! one global paging device, one write-back circuit breaker and one torn
//! -write retry queue — so one sick device degraded every container. A
//! [`BackingDevice`] restores the per-pager structure: each table entry
//! owns its paging device, its backing-store extent map, its circuit
//! breaker, its in-flight flush list and its retry queue. Objects bind to
//! a device at creation ([`crate::Kernel::create_object_on`]) and the
//! pageout pump routes every read, flush and retry to the owning entry,
//! so fault-plan storms on one device leave the others' write-back
//! pipelines untouched.
//!
//! Entries are a managed *lifecycle*, not a static table: a device starts
//! [`DeviceState::Active`], a hot-unplug ([`crate::Kernel::remove_device`])
//! moves it through [`DeviceState::Draining`] to [`DeviceState::Removed`],
//! and a breaker that exhausts its backoff budget escalates straight to
//! [`DeviceState::Dead`]. Both exits run the same drain: objects re-bind
//! to a surviving entry and their backing pages are copied over through
//! the per-entry migration queue driven by the pageout pump.

use hipec_disk::{BackingStore, DeviceParams, DiskQueue, Lba, PagingDevice};
use hipec_sim::{LatencyHistogram, SimTime};

use crate::breaker::CircuitBreaker;
use crate::kernel::{InflightFlush, RetryTag};
use crate::types::{DeviceId, ObjectId};

/// Where a device-table entry is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceState {
    /// In service: accepts new object bindings, reads and write-backs.
    #[default]
    Active,
    /// Hot-unplug in progress: objects are re-bound and backing pages are
    /// being copied onto a sibling; no new bindings are accepted.
    Draining,
    /// Hot-unplug complete: no outstanding work traces back to the entry.
    Removed,
    /// Permanently failed (breaker backoff budget exhausted). Terminal;
    /// the forced drain runs while the entry stays Dead.
    Dead,
}

/// One queued backing-page copy: a page of `object` being re-homed from
/// device `from` onto the device whose migration queue holds the tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrTag {
    /// The object whose page is being copied.
    pub object: ObjectId,
    /// The page within the object.
    pub offset: u64,
    /// The device the page is leaving.
    pub from: DeviceId,
    /// Copy submissions so far. Migration copies carry the drained data,
    /// so they are never abandoned — a torn or rejected copy re-queues
    /// until the receiving device accepts it.
    pub attempts: u32,
}

/// A migration copy submitted to the device and not yet reaped.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InflightMigration {
    pub done: SimTime,
    /// The device accepted the copy but will complete it torn.
    pub torn: bool,
    pub lba: Lba,
    pub tag: MigrTag,
}

/// One entry in the kernel's device table: a paging device plus all the
/// per-device write-back machinery (extent map, breaker, in-flight list,
/// torn-write retry queue, migration queue, lifecycle state).
#[derive(Debug)]
pub struct BackingDevice {
    pub(crate) id: DeviceId,
    pub(crate) disk: PagingDevice,
    pub(crate) backing: BackingStore,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) inflight: Vec<InflightFlush>,
    /// Torn flushes awaiting re-issue (FCFS — retry order is submission
    /// order; tags carry the frame and its spent attempts).
    pub(crate) retry_q: DiskQueue<RetryTag>,
    /// Lifecycle state (see [`DeviceState`]).
    pub(crate) state: DeviceState,
    /// While draining (or dead), the surviving device absorbing this
    /// entry's objects, re-homed retries and page copies.
    pub(crate) drain_to: Option<DeviceId>,
    /// Set by the breaker's `Exhausted` transition; the next pump
    /// escalates the entry to [`DeviceState::Dead`] outside the re-issue
    /// loops.
    pub(crate) dead_pending: bool,
    /// A Dead entry whose forced drain has completed (Removed implies it).
    pub(crate) drained: bool,
    /// Backing-page copies queued *onto* this device by drains and tier
    /// migrations (FCFS, driven by the pageout pump like the retry queue).
    pub(crate) migr_q: DiskQueue<MigrTag>,
    /// Migration copies submitted to this device and not yet reaped.
    pub(crate) migr_inflight: Vec<InflightMigration>,
    /// Migration copies that completed clean on this device.
    pub(crate) migr_done: u64,
    /// Completion latency of demand reads issued to this device. In the
    /// virtual-time simulation a submission's completion instant is known
    /// at issue, so latency is recorded at the submission site (behind
    /// the `metrics` feature; the storage is unconditional so snapshot
    /// shapes don't change).
    pub(crate) lat_read: LatencyHistogram,
    /// Completion latency of first-issue write-back flushes.
    pub(crate) lat_flush: LatencyHistogram,
    /// Completion latency of torn-write retry re-issues.
    pub(crate) lat_torn_retry: LatencyHistogram,
}

impl BackingDevice {
    /// Builds a fresh, fault-free table entry from device parameters.
    pub(crate) fn new(id: DeviceId, params: &DeviceParams) -> Self {
        BackingDevice {
            id,
            disk: params.build(),
            backing: BackingStore::new(params.capacity_pages()),
            breaker: CircuitBreaker::default(),
            inflight: Vec::new(),
            retry_q: DiskQueue::new(hipec_disk::QueueDiscipline::Fcfs),
            state: DeviceState::Active,
            drain_to: None,
            dead_pending: false,
            drained: false,
            migr_q: DiskQueue::new(hipec_disk::QueueDiscipline::Fcfs),
            migr_inflight: Vec::new(),
            migr_done: 0,
            lat_read: LatencyHistogram::EMPTY,
            lat_flush: LatencyHistogram::EMPTY,
            lat_torn_retry: LatencyHistogram::EMPTY,
        }
    }

    /// This entry's id (its index in the device table).
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Read-only view of the paging device itself.
    pub fn device(&self) -> &PagingDevice {
        &self.disk
    }

    /// This device's error scoreboard.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Lifecycle state of this entry.
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// True while the entry accepts new bindings and write-backs.
    pub fn is_active(&self) -> bool {
        self.state == DeviceState::Active
    }

    /// The surviving device this entry is draining onto, if a drain has
    /// been started.
    pub fn drain_target(&self) -> Option<DeviceId> {
        self.drain_to
    }

    /// Storage tier of this entry: 1 for flash (the fast tier), 0 for a
    /// rotational disk. Hot objects are promoted toward higher tiers.
    pub fn tier(&self) -> u32 {
        if self.disk.as_flash().is_some() {
            1
        } else {
            0
        }
    }

    /// FTL statistics when this entry is flash-backed (`None` for disks).
    pub fn flash_stats(&self) -> Option<hipec_disk::flash::FlashStats> {
        self.disk.as_flash().map(|f| f.stats())
    }

    /// Highest per-block erase count when flash-backed (0 for disks).
    pub fn max_wear(&self) -> u32 {
        self.disk.as_flash().map(|f| f.max_wear()).unwrap_or(0)
    }

    /// Cumulative operation counters of the underlying device.
    pub fn stats(&self) -> hipec_disk::DeviceStats {
        self.disk.stats()
    }

    /// Write-backs submitted to this device and not yet reaped.
    pub fn inflight_depth(&self) -> usize {
        self.inflight.len()
    }

    /// Torn flushes parked on this device's retry queue.
    pub fn retry_depth(&self) -> usize {
        self.retry_q.len()
    }

    /// Lifetime (pushes, pops) of this device's retry queue.
    pub fn retry_counters(&self) -> (u64, u64) {
        (self.retry_q.pushes(), self.retry_q.pops())
    }

    /// Backing-page copies queued or in flight *onto* this device.
    pub fn migr_pending(&self) -> usize {
        self.migr_q.len() + self.migr_inflight.len()
    }

    /// Migration copies that completed clean on this device.
    pub fn migrations_completed(&self) -> u64 {
        self.migr_done
    }

    /// Completion-latency histograms for this device, as `(read, flush,
    /// torn_retry)` — the snapshot surface `KernelStats` latency rows
    /// are assembled from. Empty when the `metrics` feature is off.
    pub fn latency(&self) -> (&LatencyHistogram, &LatencyHistogram, &LatencyHistogram) {
        (&self.lat_read, &self.lat_flush, &self.lat_torn_retry)
    }

    /// Writes in flight that count against the breaker's degraded
    /// in-flight window (flushes and migration copies alike).
    pub(crate) fn degraded_inflight(&self) -> usize {
        self.inflight.len() + self.migr_inflight.len()
    }

    /// Deterministic pressure score steering the pump's per-call service
    /// order: higher scores drain first. Combines, in decreasing weight:
    ///
    /// * completions already due — each reap frees a frame or retires a
    ///   migration copy, the direct head-of-line payload;
    /// * how long the oldest due completion has been claimable — deadline
    ///   ageing, so work parked across many pump calls rises to the front
    ///   instead of starving behind a perpetually-stormy sibling;
    /// * the in-flight depth (flushes and copies alike);
    /// * the parked backlog (torn retries plus queued copies), discounted
    ///   while the breaker is open because a gated device can only submit
    ///   bounded probe bursts no matter how early it is served.
    ///
    /// A pure function of device state and `now` — no host time, no
    /// randomness — so the weighted order is replay-stable.
    pub(crate) fn pressure(&self, now: SimTime) -> u64 {
        /// Score per completion already due.
        const DUE_WEIGHT: u64 = 64;
        /// Score per microsecond the oldest due completion has waited.
        const LATENESS_WEIGHT: u64 = 4;
        /// Ageing saturates here (≈1 s) so one ancient completion cannot
        /// overflow the score or drown every other component forever.
        const LATENESS_CAP_US: u64 = 1 << 20;
        /// Score per in-flight submission (not yet due).
        const INFLIGHT_WEIGHT: u64 = 2;

        let mut due = 0u64;
        let mut oldest_due: Option<SimTime> = None;
        for done in self
            .inflight
            .iter()
            .map(|i| i.done)
            .chain(self.migr_inflight.iter().map(|m| m.done))
        {
            if done <= now {
                due += 1;
                oldest_due = Some(oldest_due.map_or(done, |o| o.min(done)));
            }
        }
        let lateness_us = oldest_due
            .map_or(0, |o| now.since(o).as_ns() / 1_000)
            .min(LATENESS_CAP_US);
        let backlog = (self.retry_q.len() + self.migr_q.len()) as u64;
        let backlog = if self.breaker.is_closed() {
            backlog
        } else {
            backlog / 2
        };
        due * DUE_WEIGHT
            + lateness_us * LATENESS_WEIGHT
            + self.degraded_inflight() as u64 * INFLIGHT_WEIGHT
            + backlog
    }

    /// Earliest virtual instant at which pumping *this* device makes
    /// write-back or migration progress: its next in-flight completion
    /// (flush or page copy), or — when nothing is in flight but torn
    /// retries or queued copies are parked — its breaker's next probe
    /// window (`now` if the breaker is closed). `None` once every
    /// write-back and migration lifecycle on this device has closed.
    pub(crate) fn next_progress(&self, now: SimTime) -> Option<SimTime> {
        if let Some(done) = self
            .inflight
            .iter()
            .map(|i| i.done)
            .chain(self.migr_inflight.iter().map(|m| m.done))
            .min()
        {
            return Some(done);
        }
        if self.retry_q.is_empty() && self.migr_q.is_empty() {
            return None;
        }
        Some(if self.breaker.is_closed() {
            now
        } else {
            self.breaker.next_probe_at().max(now)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_entry_is_healthy_and_idle() {
        let d = BackingDevice::new(DeviceId(3), &DeviceParams::default());
        assert_eq!(d.id(), DeviceId(3));
        assert!(d.breaker().is_closed());
        assert_eq!(d.state(), DeviceState::Active);
        assert!(d.is_active());
        assert_eq!(d.drain_target(), None);
        assert_eq!(d.tier(), 0, "default device is rotational");
        assert_eq!(d.flash_stats().map(|s| s.programs), None);
        assert_eq!(d.max_wear(), 0);
        assert_eq!(d.inflight_depth(), 0);
        assert_eq!(d.retry_depth(), 0);
        assert_eq!(d.migr_pending(), 0);
        assert_eq!(d.migrations_completed(), 0);
        assert_eq!(d.retry_counters(), (0, 0));
        assert_eq!(d.stats(), hipec_disk::DeviceStats::default());
        assert_eq!(d.next_progress(SimTime::ZERO), None);
    }

    #[test]
    fn flash_entries_report_the_fast_tier() {
        let d = BackingDevice::new(
            DeviceId(1),
            &DeviceParams::Flash(hipec_disk::FlashParams::early_flash_card()),
        );
        assert_eq!(d.tier(), 1);
        assert!(d.flash_stats().is_some());
    }

    #[test]
    fn next_progress_prefers_inflight_over_retries() {
        let mut d = BackingDevice::new(DeviceId(0), &DeviceParams::default());
        let now = SimTime::from_ns(100);
        let done = SimTime::from_ns(5_000);
        d.inflight.push(InflightFlush {
            done,
            frame: crate::types::FrameId(1),
            torn: false,
            attempts: 1,
            rehomed_from: None,
        });
        assert_eq!(d.next_progress(now), Some(done));
        d.inflight.clear();
        d.retry_q.push(
            hipec_disk::Lba(0),
            RetryTag {
                frame: crate::types::FrameId(1),
                attempts: 1,
                rehomed_from: None,
            },
        );
        // Closed breaker: retries can be re-issued immediately.
        assert_eq!(d.next_progress(now), Some(now));
    }

    #[test]
    fn next_progress_covers_queued_and_inflight_migrations() {
        let mut d = BackingDevice::new(DeviceId(0), &DeviceParams::default());
        let now = SimTime::from_ns(100);
        let tag = MigrTag {
            object: ObjectId(7),
            offset: 3,
            from: DeviceId(1),
            attempts: 0,
        };
        d.migr_q.push(hipec_disk::Lba(3), tag);
        // A queued copy alone is progress at the next submission window.
        assert_eq!(d.next_progress(now), Some(now));
        assert_eq!(d.migr_pending(), 1);
        let done = SimTime::from_ns(9_000);
        d.migr_q.pop_next(0, |_| 0);
        d.migr_inflight.push(InflightMigration {
            done,
            torn: false,
            lba: hipec_disk::Lba(3),
            tag,
        });
        assert_eq!(d.next_progress(now), Some(done));
        assert_eq!(d.degraded_inflight(), 1);
    }
}

//! A Mach-style virtual-memory substrate, in deterministic simulation.
//!
//! This crate is the operating-system foundation the HiPEC reproduction
//! runs on: physical frames with intrusive page queues ([`frame`]), memory
//! objects ([`object`]), per-task address maps and pmaps ([`map`], [`task`]),
//! a fault path and frame pool ([`kernel`]), and the Mach pageout daemon
//! with FIFO-second-chance replacement ([`pageout`]).
//!
//! Used alone, [`kernel::Kernel`] *is* the unmodified Mach 3.0 baseline of
//! the paper's experiments. The `hipec-core` crate layers containers, the
//! policy executor, the security checker and the global frame manager on the
//! hooks this crate exposes.

pub mod breaker;
pub mod device;
pub mod frame;
pub mod kernel;
pub mod lifecycle;
pub mod map;
pub mod object;
pub mod pageout;
pub mod task;
pub mod trace;
pub mod types;

pub use breaker::{BreakerCounters, BreakerParams, BreakerState, CircuitBreaker};
pub use device::{BackingDevice, DeviceState, MigrTag};
pub use frame::{Frame, FrameTable, QueueId};
pub use kernel::{
    AccessKind, AccessOutcome, AccessResult, DeadFlush, Kernel, KernelParams, PolicyFaultInfo,
    RetryTag,
};
pub use map::{MapEntry, VmMap};
pub use object::{Backing, VmObject};
pub use task::Task;
pub use trace::{EventRing, TraceRecord, VmEvent};
pub use types::{
    bytes_to_pages, DeviceId, FrameId, ObjectId, PageOffset, TaskId, VAddr, VmError, PAGE_SIZE,
};

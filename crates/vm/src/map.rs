//! Per-task address maps.
//!
//! A `VmMap` is the ordered set of virtual-memory regions a task has mapped,
//! each backed by a memory object — Mach's `vm_map` / `vm_map_entry`. The
//! *region* is HiPEC's unit of specific control (paper §3).

use std::collections::BTreeMap;

use crate::types::{ObjectId, TaskId, VAddr, VmError, PAGE_SIZE};

/// One contiguous mapped region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapEntry {
    /// First virtual page of the region.
    pub start_vpage: u64,
    /// Length in pages.
    pub pages: u64,
    /// Backing object.
    pub object: ObjectId,
    /// Object page corresponding to `start_vpage`.
    pub object_offset: u64,
}

impl MapEntry {
    /// Translates a virtual page within this entry to an object page.
    pub fn object_page(&self, vpage: u64) -> u64 {
        debug_assert!(self.contains(vpage));
        self.object_offset + (vpage - self.start_vpage)
    }

    /// True if `vpage` falls inside the region.
    pub fn contains(&self, vpage: u64) -> bool {
        vpage >= self.start_vpage && vpage < self.start_vpage + self.pages
    }
}

/// A task's address map.
#[derive(Debug, Clone, Default)]
pub struct VmMap {
    /// Entries keyed by starting virtual page.
    entries: BTreeMap<u64, MapEntry>,
    /// Next page used by the find-space allocator.
    next_vpage: u64,
}

impl VmMap {
    /// Creates an empty map whose find-space allocator starts at 1 GiB
    /// (leaving low addresses free for explicitly placed regions, as the
    /// Mach user map layout does for text/data).
    pub fn new() -> Self {
        VmMap {
            entries: BTreeMap::new(),
            next_vpage: (1u64 << 30) / PAGE_SIZE,
        }
    }

    /// Inserts a region at a kernel-chosen address; returns its base address.
    pub fn insert_anywhere(
        &mut self,
        pages: u64,
        object: ObjectId,
        object_offset: u64,
    ) -> Result<VAddr, VmError> {
        if pages == 0 {
            return Err(VmError::EmptyRegion);
        }
        let start = self.next_vpage;
        self.next_vpage += pages;
        let entry = MapEntry {
            start_vpage: start,
            pages,
            object,
            object_offset,
        };
        self.entries.insert(start, entry);
        Ok(VAddr(start * PAGE_SIZE))
    }

    /// Inserts a region at a fixed address, failing on overlap.
    pub fn insert_at(
        &mut self,
        addr: VAddr,
        pages: u64,
        object: ObjectId,
        object_offset: u64,
    ) -> Result<(), VmError> {
        if pages == 0 {
            return Err(VmError::EmptyRegion);
        }
        let start = addr.vpage();
        let end = start + pages;
        // The nearest entry at or below `start`, and the first above, are the
        // only possible overlaps.
        if let Some((_, e)) = self.entries.range(..=start).next_back() {
            if e.start_vpage + e.pages > start {
                return Err(VmError::RegionOverlap(addr));
            }
        }
        if let Some((_, e)) = self.entries.range(start..).next() {
            if e.start_vpage < end {
                return Err(VmError::RegionOverlap(addr));
            }
        }
        self.entries.insert(
            start,
            MapEntry {
                start_vpage: start,
                pages,
                object,
                object_offset,
            },
        );
        Ok(())
    }

    /// Finds the entry covering `addr`.
    pub fn lookup(&self, task: TaskId, addr: VAddr) -> Result<&MapEntry, VmError> {
        let vpage = addr.vpage();
        self.entries
            .range(..=vpage)
            .next_back()
            .map(|(_, e)| e)
            .filter(|e| e.contains(vpage))
            .ok_or(VmError::UnmappedAddress(task, addr))
    }

    /// Removes the entry starting exactly at `addr`, returning it.
    pub fn remove(&mut self, addr: VAddr) -> Option<MapEntry> {
        self.entries.remove(&addr.vpage())
    }

    /// Iterates all entries in address order.
    pub fn iter(&self) -> impl Iterator<Item = &MapEntry> {
        self.entries.values()
    }

    /// Number of mapped regions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TaskId = TaskId(0);

    #[test]
    fn insert_anywhere_allocates_disjoint_regions() {
        let mut m = VmMap::new();
        let a = m.insert_anywhere(10, ObjectId(1), 0).expect("region a");
        let b = m.insert_anywhere(5, ObjectId(2), 0).expect("region b");
        assert_eq!(b.vpage(), a.vpage() + 10);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn lookup_resolves_interior_addresses() {
        let mut m = VmMap::new();
        let base = m.insert_anywhere(4, ObjectId(9), 100).expect("region");
        let inside = VAddr(base.0 + 2 * PAGE_SIZE + 5);
        let e = m.lookup(T, inside).expect("covered");
        assert_eq!(e.object, ObjectId(9));
        assert_eq!(e.object_page(inside.vpage()), 102);
    }

    #[test]
    fn lookup_outside_any_region_faults() {
        let mut m = VmMap::new();
        let base = m.insert_anywhere(2, ObjectId(1), 0).expect("region");
        let past_end = VAddr(base.0 + 2 * PAGE_SIZE);
        assert_eq!(
            m.lookup(T, past_end),
            Err(VmError::UnmappedAddress(T, past_end))
        );
        assert!(m.lookup(T, VAddr(0)).is_err());
    }

    #[test]
    fn insert_at_detects_overlap() {
        let mut m = VmMap::new();
        m.insert_at(VAddr(0x10000), 4, ObjectId(1), 0)
            .expect("first");
        // Overlapping from below.
        assert!(m
            .insert_at(VAddr(0x10000 - PAGE_SIZE), 2, ObjectId(2), 0)
            .is_err());
        // Overlapping inside.
        assert!(m.insert_at(VAddr(0x11000), 1, ObjectId(2), 0).is_err());
        // Adjacent after is fine.
        m.insert_at(VAddr(0x10000 + 4 * PAGE_SIZE), 2, ObjectId(2), 0)
            .expect("adjacent");
        // Adjacent before is fine.
        m.insert_at(VAddr(0x10000 - 2 * PAGE_SIZE), 2, ObjectId(3), 0)
            .expect("before");
    }

    #[test]
    fn empty_region_is_rejected() {
        let mut m = VmMap::new();
        assert_eq!(
            m.insert_anywhere(0, ObjectId(1), 0),
            Err(VmError::EmptyRegion)
        );
        assert_eq!(
            m.insert_at(VAddr(0x1000), 0, ObjectId(1), 0),
            Err(VmError::EmptyRegion)
        );
    }

    #[test]
    fn remove_frees_the_address_range() {
        let mut m = VmMap::new();
        m.insert_at(VAddr(0x20000), 4, ObjectId(1), 0)
            .expect("insert");
        let e = m.remove(VAddr(0x20000)).expect("present");
        assert_eq!(e.pages, 4);
        assert!(m.is_empty());
        m.insert_at(VAddr(0x20000), 4, ObjectId(2), 0)
            .expect("range reusable after remove");
    }
}

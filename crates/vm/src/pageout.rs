//! The pageout daemon: Mach's FIFO-with-second-chance replacement.
//!
//! This is the default-pool policy the paper's Table 2 re-expresses in HiPEC
//! commands: keep `inactive_target` pages on the inactive queue (clearing
//! their reference bits on the way), then reclaim from the inactive head —
//! referenced pages get a second chance back on the active queue, dirty
//! pages are flushed asynchronously, clean pages are freed.

use hipec_sim::SimTime;

use crate::kernel::{InflightFlush, Kernel};
use crate::trace::VmEvent;
use crate::types::{FrameId, VmError};

impl Kernel {
    /// Runs the pageout daemon until the free queue reaches `free_target`
    /// or no further progress is possible (everything left is in flight).
    pub(crate) fn pageout_scan(&mut self) -> Result<(), VmError> {
        self.stats.bump("scans");
        let mut total_freed = 0;
        let mut total_flushed = 0;
        loop {
            let moved = self.refill_inactive()?;
            let (freed, flushed) = self.reclaim_inactive()?;
            total_freed += freed;
            total_flushed += flushed;
            if self.free_count() >= self.free_target || (moved + freed + flushed) == 0 {
                if self.free_count() < self.free_target && self.any_breaker_open() {
                    // The normal pass stalled and some device's breaker is
                    // tripped: its dirty pages cannot be flushed, so
                    // balance must make progress on clean pages alone,
                    // reference bits be damned. This is degraded mode's
                    // forced synchronous reclaim.
                    total_freed += self.forced_clean_reclaim()?;
                }
                self.emit(VmEvent::PageoutScan {
                    freed: total_freed,
                    flushed: total_flushed,
                });
                return Ok(());
            }
        }
    }

    /// Degraded-mode reclamation: free clean pages from the inactive (then
    /// active) queue regardless of reference bits. Dirty pages are skipped —
    /// they are the breaker's problem. Bounded by one pass over both queues.
    fn forced_clean_reclaim(&mut self) -> Result<u64, VmError> {
        let mut freed = 0;
        let mut budget = self.inactive_count() + self.active_count();
        while self.free_count() < self.free_target && budget > 0 {
            budget -= 1;
            let f = match self.frames.dequeue_head(self.inactive_q)? {
                Some(f) => f,
                None => match self.frames.dequeue_head(self.active_q)? {
                    Some(f) => f,
                    None => break,
                },
            };
            self.charge(self.cost.queue_op + self.cost.bit_op);
            if self.frames.frame(f)?.mod_bit {
                self.frames.enqueue_tail(self.inactive_q, f)?;
                continue;
            }
            self.evict_frame(f)?;
            self.frames.enqueue_tail(self.free_q, f)?;
            self.charge(self.cost.queue_op);
            freed += 1;
        }
        if freed > 0 {
            self.stats.add("forced_sync_reclaims", freed);
        }
        Ok(freed)
    }

    /// Stage 1: move pages from the active head to the inactive tail,
    /// clearing reference bits, until the inactive target is met.
    fn refill_inactive(&mut self) -> Result<u64, VmError> {
        let mut moved = 0;
        while self.inactive_count() < self.inactive_target {
            let Some(f) = self.frames.dequeue_head(self.active_q)? else {
                break;
            };
            self.frames.frame_mut(f)?.ref_bit = false;
            self.frames.enqueue_tail(self.inactive_q, f)?;
            self.charge(self.cost.queue_op * 2 + self.cost.bit_op);
            moved += 1;
        }
        Ok(moved)
    }

    /// Stage 2: reclaim from the inactive head with second chance.
    ///
    /// A dirty page whose flush submission fails (injected device fault)
    /// goes back to the inactive tail and the scan moves on; the pop budget
    /// bounds the pass so an all-faulting device cannot livelock it.
    fn reclaim_inactive(&mut self) -> Result<(u64, u64), VmError> {
        let mut freed = 0;
        let mut flushed = 0;
        let mut budget = self.inactive_count();
        while self.free_count() < self.free_target && budget > 0 {
            budget -= 1;
            let Some(f) = self.frames.dequeue_head(self.inactive_q)? else {
                break;
            };
            self.charge(self.cost.queue_op + self.cost.bit_op);
            let frame = self.frames.frame(f)?;
            if frame.ref_bit {
                // Second chance: it was referenced while inactive.
                self.frames.frame_mut(f)?.ref_bit = false;
                self.frames.enqueue_tail(self.active_q, f)?;
                self.charge(self.cost.queue_op + self.cost.bit_op);
                self.stats.bump("reactivations");
                continue;
            }
            if frame.mod_bit {
                match self.start_flush(f) {
                    Ok(_) => flushed += 1,
                    Err(VmError::Device(_)) => {
                        // The page is untouched (still dirty and resident);
                        // park it at the inactive tail for a later pass.
                        self.frames.enqueue_tail(self.inactive_q, f)?;
                    }
                    Err(e) => return Err(e),
                }
            } else {
                self.evict_frame(f)?;
                self.frames.enqueue_tail(self.free_q, f)?;
                self.charge(self.cost.queue_op);
                freed += 1;
            }
        }
        Ok((freed, flushed))
    }

    /// Starts an asynchronous write-back of a dirty frame.
    ///
    /// The frame is unmapped and evicted from its object immediately (a
    /// subsequent fault re-reads from the paging device, which the FIFO
    /// device ordering makes safe), marked busy, and its write is submitted.
    /// [`Kernel::pump`] frees it when the write completes. Returns the
    /// completion instant.
    pub fn start_flush(&mut self, frame: FrameId) -> Result<SimTime, VmError> {
        let (object, offset) = self
            .frames
            .frame(frame)?
            .owner
            .ok_or(VmError::FrameNotQueued(frame))?;
        // Route to the owning object's backing device.
        let device = self.object(object)?.device;
        let di = device.0 as usize;
        // While that device's breaker is tripped, flushes wait out the
        // backoff unless this submission can serve as a probe. Refusing
        // here consumes no fault-plan operation and leaves the page exactly
        // as it was; the caller sees the same device error a rejected
        // submission raises.
        if !self.devices[di].breaker.is_closed()
            && !self.devices[di]
                .breaker
                .probe_due(self.clock.now(), self.devices[di].degraded_inflight())
        {
            self.devices[di].breaker.note_deferred();
            self.stats.bump("flush_deferred");
            return Err(VmError::Device(hipec_disk::DiskFault::WriteError(
                hipec_disk::Lba(0),
            )));
        }
        // Anonymous objects get a swap extent the first time any of their
        // pages is written out.
        let key = object.0 as u64;
        if !self.devices[di].backing.has_extent(key) {
            let size = self.object(object)?.size_pages;
            self.devices[di].backing.allocate(key, size)?;
        }
        // Submit the write *before* mutating any frame or object state: an
        // injected submission failure then leaves the page exactly as it
        // was (dirty, mapped, resident) and needs no rollback.
        let loc = self.devices[di].backing.locate(key, offset.0)?;
        let now = self.clock.now();
        let completion = match self.devices[di].disk.write(loc.lba, now) {
            Ok(c) => c,
            Err(fault) => {
                self.breaker_record_write(di, false);
                self.stats.bump("flush_errors");
                return Err(VmError::Device(fault));
            }
        };
        self.breaker_record_write(di, !completion.torn);
        // Completion instants are known at submission in virtual time:
        // record the flush's service latency here.
        #[cfg(feature = "metrics")]
        self.devices[di]
            .lat_flush
            .record(completion.done.since(now));
        // Busy frames sit on no queue: detach callers that flush straight
        // off a queue (the pageout path has already dequeued its victim).
        if self.frames.queue_of(frame)?.is_some() {
            self.frames.remove(frame)?;
        }
        self.unmap_frame(frame)?;
        {
            let obj = self.object_mut(object)?;
            obj.swap_allocated = true;
            obj.paged_out.insert(offset.0);
            obj.evict(offset);
        }
        {
            let f = self.frames.frame_mut(frame)?;
            f.mod_bit = false;
            f.ref_bit = false;
            f.busy = true;
        }
        self.charge(self.cost.flush_handoff);
        self.devices[di].inflight.push(InflightFlush {
            done: completion.done,
            frame,
            torn: completion.torn,
            attempts: 1,
            rehomed_from: None,
        });
        self.stats.bump("pageouts");
        self.emit(VmEvent::FlushStart {
            device,
            frame,
            torn: completion.torn,
        });
        Ok(completion.done)
    }
}

#[cfg(test)]
mod tests {
    use crate::kernel::{AccessOutcome, Kernel, KernelParams};
    use crate::types::{VAddr, PAGE_SIZE};

    fn tight_kernel() -> Kernel {
        let mut p = KernelParams::paper_64mb();
        p.total_frames = 64;
        p.wired_frames = 4;
        p.free_target = 8;
        p.free_min = 4;
        p.inactive_target = 12;
        Kernel::new(p)
    }

    #[test]
    fn clean_pages_are_reclaimed_without_io() {
        let mut k = tight_kernel(); // 60 pageable
        let t = k.create_task();
        let (addr, _) = k.vm_allocate(t, 100 * PAGE_SIZE).expect("allocate");
        // Read-only touches: pages stay clean, reclamation never writes.
        for p in 0..100 {
            k.access(t, VAddr(addr.0 + p * PAGE_SIZE), false)
                .expect("access");
        }
        assert_eq!(k.stats.get("pageouts"), 0);
        assert!(k.stats.get("scans") > 0);
        // Zero-filled clean pages are dropped and re-zero-filled on return.
        assert_eq!(k.stats.get("pageins"), 0);
    }

    #[test]
    fn dirty_pages_are_flushed_and_read_back() {
        let mut k = tight_kernel();
        let t = k.create_task();
        let (addr, _) = k.vm_allocate(t, 100 * PAGE_SIZE).expect("allocate");
        for p in 0..100 {
            k.access(t, VAddr(addr.0 + p * PAGE_SIZE), true)
                .expect("write");
        }
        assert!(k.stats.get("pageouts") > 0);
        // Sweep again: previously paged-out pages come back from swap.
        for p in 0..100 {
            let out = k
                .access(t, VAddr(addr.0 + p * PAGE_SIZE), false)
                .expect("read");
            if let AccessOutcome::Done(r) = out {
                if let Some(done) = r.io_until {
                    k.clock.advance_to(done);
                    k.pump();
                }
            }
        }
        assert!(k.stats.get("pageins") > 0, "swapped pages must page in");
    }

    #[test]
    fn second_chance_protects_referenced_pages() {
        let mut k = tight_kernel(); // 60 pageable frames
        let t = k.create_task();
        // A small hot set plus a large cold sweep. The hot pages are touched
        // between sweeps, so second chance must keep them resident.
        let (hot, _) = k.vm_allocate(t, 8 * PAGE_SIZE).expect("hot region");
        let (cold, _) = k.vm_allocate(t, 120 * PAGE_SIZE).expect("cold region");
        for p in 0..8 {
            k.access(t, VAddr(hot.0 + p * PAGE_SIZE), false)
                .expect("warm hot set");
        }
        let mut hot_faults_after_warmup = 0;
        for sweep in 0..4 {
            for p in 0..120 {
                k.access(t, VAddr(cold.0 + p * PAGE_SIZE), false)
                    .expect("cold");
                // Keep the hot set referenced throughout the sweep.
                if p % 10 == 0 {
                    for h in 0..8 {
                        let before = k.stats.get("faults");
                        k.access(t, VAddr(hot.0 + h * PAGE_SIZE), false)
                            .expect("hot");
                        if sweep > 0 {
                            hot_faults_after_warmup += k.stats.get("faults") - before;
                        }
                    }
                }
            }
        }
        assert!(k.stats.get("reactivations") > 0, "second chance must fire");
        // 288 post-warm-up hot touches: without second chance a 120-page
        // cyclic sweep over 60 frames would evict the hot set before every
        // burst (~96 faults). Second chance must keep it well below that.
        assert!(
            hot_faults_after_warmup < 72,
            "hot set was evicted {hot_faults_after_warmup} times"
        );
    }

    #[test]
    fn flush_completions_return_frames_to_free() {
        let mut k = tight_kernel();
        let t = k.create_task();
        let (addr, _) = k.vm_allocate(t, 100 * PAGE_SIZE).expect("allocate");
        for p in 0..100 {
            k.access(t, VAddr(addr.0 + p * PAGE_SIZE), true)
                .expect("write");
        }
        if let Some(done) = k.next_flush_completion() {
            k.clock.advance_to(done);
            k.pump();
            assert!(k.stats.get("flush_completions") > 0);
        }
    }
}

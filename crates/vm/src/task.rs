//! Tasks: an address map plus a software pmap.
//!
//! The pmap is the machine-dependent translation layer in Mach; here it is a
//! hash map from virtual page to frame. Reference/modify bits live on the
//! frame (see [`crate::frame::FrameTable::touch`]), as Mach keeps them on
//! `vm_page` via pmap emulation.

use std::collections::HashMap;

use crate::map::VmMap;
use crate::types::{FrameId, TaskId};

/// One simulated task (process address space).
#[derive(Debug, Clone)]
pub struct Task {
    /// Task identifier.
    pub id: TaskId,
    /// The task's address map.
    pub map: VmMap,
    /// Installed translations: virtual page → frame.
    pub pmap: HashMap<u64, FrameId>,
}

impl Task {
    /// Creates a task with an empty map and pmap.
    pub fn new(id: TaskId) -> Self {
        Task {
            id,
            map: VmMap::new(),
            pmap: HashMap::new(),
        }
    }

    /// Looks up the translation for a virtual page.
    pub fn translate(&self, vpage: u64) -> Option<FrameId> {
        self.pmap.get(&vpage).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translations() {
        let mut t = Task::new(TaskId(3));
        assert_eq!(t.translate(5), None);
        t.pmap.insert(5, FrameId(9));
        assert_eq!(t.translate(5), Some(FrameId(9)));
    }
}

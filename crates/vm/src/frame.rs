//! The physical frame table and intrusive page queues.
//!
//! Mirrors Mach's `vm_page` machinery: every physical frame carries its
//! ownership (which object/offset currently lives in it), software
//! reference/modify bits, and intrusive queue links. A frame is on at most
//! one page queue at a time; queues support O(1) enqueue, dequeue and
//! mid-queue removal, which is what makes command-driven replacement
//! policies cheap.
//!
//! Queues can be created dynamically — the kernel owns the global free,
//! active and inactive queues, and every HiPEC container creates its private
//! queues in the same table so interpreted commands operate on the same
//! machinery the native pageout daemon uses.

use crate::types::{FrameId, ObjectId, PageOffset, TaskId, VmError};

/// A page-queue identifier within a [`FrameTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId(pub u32);

/// One physical page frame.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    /// The object page currently held, if any.
    pub owner: Option<(ObjectId, PageOffset)>,
    /// Software reference bit (set by the pmap on access).
    pub ref_bit: bool,
    /// Software modify bit (set by the pmap on write).
    pub mod_bit: bool,
    /// Wired frames are never candidates for replacement.
    pub wired: bool,
    /// Busy frames are in transit (e.g. being flushed) and unavailable.
    pub busy: bool,
    /// Tasks (and virtual pages) currently mapping this frame.
    pub mappings: Vec<(TaskId, u64)>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Link {
    prev: Option<FrameId>,
    next: Option<FrameId>,
    queue: Option<QueueId>,
}

#[derive(Debug, Clone)]
struct QueueMeta {
    head: Option<FrameId>,
    tail: Option<FrameId>,
    len: u64,
    auto_recency: bool,
}

/// The frame arena plus all page queues threaded through it.
#[derive(Debug, Clone)]
pub struct FrameTable {
    frames: Vec<Frame>,
    links: Vec<Link>,
    queues: Vec<QueueMeta>,
}

impl FrameTable {
    /// Creates a table of `nframes` unowned, unqueued frames.
    pub fn new(nframes: u32) -> Self {
        FrameTable {
            frames: (0..nframes).map(|_| Frame::default()).collect(),
            links: vec![Link::default(); nframes as usize],
            queues: Vec::new(),
        }
    }

    /// Number of frames in the table.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if the table holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Creates a new empty queue.
    ///
    /// With `auto_recency` set, every [`FrameTable::touch`] of a member frame
    /// moves it to the tail, keeping the queue ordered least-recently-used
    /// (head) to most-recently-used (tail). This is the kernel-provided exact
    /// recency ordering the `LRU`/`MRU` complex commands rely on.
    pub fn new_queue(&mut self, auto_recency: bool) -> QueueId {
        let id = QueueId(self.queues.len() as u32);
        self.queues.push(QueueMeta {
            head: None,
            tail: None,
            len: 0,
            auto_recency,
        });
        id
    }

    fn check_frame(&self, f: FrameId) -> Result<(), VmError> {
        if (f.0 as usize) < self.frames.len() {
            Ok(())
        } else {
            Err(VmError::BadFrame(f))
        }
    }

    fn check_queue(&self, q: QueueId) -> Result<(), VmError> {
        if (q.0 as usize) < self.queues.len() {
            Ok(())
        } else {
            Err(VmError::BadQueue(q.0))
        }
    }

    /// Immutable access to a frame.
    pub fn frame(&self, f: FrameId) -> Result<&Frame, VmError> {
        self.check_frame(f)?;
        Ok(&self.frames[f.0 as usize])
    }

    /// Mutable access to a frame.
    pub fn frame_mut(&mut self, f: FrameId) -> Result<&mut Frame, VmError> {
        self.check_frame(f)?;
        Ok(&mut self.frames[f.0 as usize])
    }

    /// The queue a frame currently sits on, if any.
    pub fn queue_of(&self, f: FrameId) -> Result<Option<QueueId>, VmError> {
        self.check_frame(f)?;
        Ok(self.links[f.0 as usize].queue)
    }

    /// Queue length.
    pub fn queue_len(&self, q: QueueId) -> Result<u64, VmError> {
        self.check_queue(q)?;
        Ok(self.queues[q.0 as usize].len)
    }

    /// True if the queue has no members.
    pub fn queue_is_empty(&self, q: QueueId) -> Result<bool, VmError> {
        Ok(self.queue_len(q)? == 0)
    }

    /// The frame at the head (front) of the queue.
    pub fn queue_head(&self, q: QueueId) -> Result<Option<FrameId>, VmError> {
        self.check_queue(q)?;
        Ok(self.queues[q.0 as usize].head)
    }

    /// The frame at the tail (back) of the queue.
    pub fn queue_tail(&self, q: QueueId) -> Result<Option<FrameId>, VmError> {
        self.check_queue(q)?;
        Ok(self.queues[q.0 as usize].tail)
    }

    /// Appends `f` at the tail of `q`. Fails if `f` is on any queue.
    pub fn enqueue_tail(&mut self, q: QueueId, f: FrameId) -> Result<(), VmError> {
        self.check_frame(f)?;
        self.check_queue(q)?;
        if self.links[f.0 as usize].queue.is_some() {
            return Err(VmError::FrameAlreadyQueued(f));
        }
        let meta = &mut self.queues[q.0 as usize];
        let old_tail = meta.tail;
        meta.tail = Some(f);
        if meta.head.is_none() {
            meta.head = Some(f);
        }
        meta.len += 1;
        self.links[f.0 as usize] = Link {
            prev: old_tail,
            next: None,
            queue: Some(q),
        };
        if let Some(t) = old_tail {
            self.links[t.0 as usize].next = Some(f);
        }
        Ok(())
    }

    /// Inserts `f` at the head of `q`. Fails if `f` is on any queue.
    pub fn enqueue_head(&mut self, q: QueueId, f: FrameId) -> Result<(), VmError> {
        self.check_frame(f)?;
        self.check_queue(q)?;
        if self.links[f.0 as usize].queue.is_some() {
            return Err(VmError::FrameAlreadyQueued(f));
        }
        let meta = &mut self.queues[q.0 as usize];
        let old_head = meta.head;
        meta.head = Some(f);
        if meta.tail.is_none() {
            meta.tail = Some(f);
        }
        meta.len += 1;
        self.links[f.0 as usize] = Link {
            prev: None,
            next: old_head,
            queue: Some(q),
        };
        if let Some(h) = old_head {
            self.links[h.0 as usize].prev = Some(f);
        }
        Ok(())
    }

    /// Removes and returns the head of `q` (oldest member), if any.
    pub fn dequeue_head(&mut self, q: QueueId) -> Result<Option<FrameId>, VmError> {
        self.check_queue(q)?;
        match self.queues[q.0 as usize].head {
            Some(f) => {
                self.remove(f)?;
                Ok(Some(f))
            }
            None => Ok(None),
        }
    }

    /// Removes and returns the tail of `q` (newest member), if any.
    pub fn dequeue_tail(&mut self, q: QueueId) -> Result<Option<FrameId>, VmError> {
        self.check_queue(q)?;
        match self.queues[q.0 as usize].tail {
            Some(f) => {
                self.remove(f)?;
                Ok(Some(f))
            }
            None => Ok(None),
        }
    }

    /// Unlinks `f` from whatever queue it is on.
    pub fn remove(&mut self, f: FrameId) -> Result<(), VmError> {
        self.check_frame(f)?;
        let link = self.links[f.0 as usize];
        let q = link.queue.ok_or(VmError::FrameNotQueued(f))?;
        let meta = &mut self.queues[q.0 as usize];
        match link.prev {
            Some(p) => self.links[p.0 as usize].next = link.next,
            None => meta.head = link.next,
        }
        let meta = &mut self.queues[q.0 as usize];
        match link.next {
            Some(n) => self.links[n.0 as usize].prev = link.prev,
            None => meta.tail = link.prev,
        }
        self.queues[q.0 as usize].len -= 1;
        self.links[f.0 as usize] = Link::default();
        Ok(())
    }

    /// Records an access to `f`: sets the reference bit (and the modify bit
    /// for writes) and applies the auto-recency move if `f` sits on a
    /// recency-ordered queue.
    pub fn touch(&mut self, f: FrameId, write: bool) -> Result<(), VmError> {
        self.check_frame(f)?;
        {
            let frame = &mut self.frames[f.0 as usize];
            frame.ref_bit = true;
            if write {
                frame.mod_bit = true;
            }
        }
        if let Some(q) = self.links[f.0 as usize].queue {
            if self.queues[q.0 as usize].auto_recency && self.queues[q.0 as usize].tail != Some(f) {
                self.remove(f)?;
                self.enqueue_tail(q, f)?;
            }
        }
        Ok(())
    }

    /// Iterates a queue from head to tail.
    pub fn iter_queue(&self, q: QueueId) -> QueueIter<'_> {
        let next = self.queues.get(q.0 as usize).and_then(|m| m.head);
        QueueIter { table: self, next }
    }
}

/// Head-to-tail iterator over one queue.
pub struct QueueIter<'a> {
    table: &'a FrameTable,
    next: Option<FrameId>,
}

impl Iterator for QueueIter<'_> {
    type Item = FrameId;

    fn next(&mut self) -> Option<FrameId> {
        let cur = self.next?;
        self.next = self.table.links[cur.0 as usize].next;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: u32) -> FrameTable {
        FrameTable::new(n)
    }

    #[test]
    fn enqueue_dequeue_fifo_order() {
        let mut t = table(8);
        let q = t.new_queue(false);
        for i in 0..5 {
            t.enqueue_tail(q, FrameId(i)).expect("enqueue");
        }
        assert_eq!(t.queue_len(q).expect("len"), 5);
        let order: Vec<_> = std::iter::from_fn(|| t.dequeue_head(q).expect("dequeue"))
            .map(|f| f.0)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(t.queue_is_empty(q).expect("empty"));
    }

    #[test]
    fn enqueue_head_gives_lifo() {
        let mut t = table(8);
        let q = t.new_queue(false);
        for i in 0..3 {
            t.enqueue_head(q, FrameId(i)).expect("enqueue");
        }
        assert_eq!(t.queue_head(q).expect("head"), Some(FrameId(2)));
        assert_eq!(t.queue_tail(q).expect("tail"), Some(FrameId(0)));
        assert_eq!(t.dequeue_tail(q).expect("dequeue"), Some(FrameId(0)));
    }

    #[test]
    fn double_enqueue_is_rejected() {
        let mut t = table(4);
        let q1 = t.new_queue(false);
        let q2 = t.new_queue(false);
        t.enqueue_tail(q1, FrameId(0)).expect("first enqueue");
        assert_eq!(
            t.enqueue_tail(q2, FrameId(0)),
            Err(VmError::FrameAlreadyQueued(FrameId(0)))
        );
    }

    #[test]
    fn mid_queue_removal_relinks() {
        let mut t = table(8);
        let q = t.new_queue(false);
        for i in 0..5 {
            t.enqueue_tail(q, FrameId(i)).expect("enqueue");
        }
        t.remove(FrameId(2)).expect("remove middle");
        t.remove(FrameId(0)).expect("remove head");
        t.remove(FrameId(4)).expect("remove tail");
        let remaining: Vec<_> = t.iter_queue(q).map(|f| f.0).collect();
        assert_eq!(remaining, vec![1, 3]);
        assert_eq!(t.queue_len(q).expect("len"), 2);
        assert_eq!(
            t.remove(FrameId(2)),
            Err(VmError::FrameNotQueued(FrameId(2)))
        );
    }

    #[test]
    fn touch_sets_bits() {
        let mut t = table(2);
        t.touch(FrameId(0), false).expect("read touch");
        assert!(t.frame(FrameId(0)).expect("frame").ref_bit);
        assert!(!t.frame(FrameId(0)).expect("frame").mod_bit);
        t.touch(FrameId(0), true).expect("write touch");
        assert!(t.frame(FrameId(0)).expect("frame").mod_bit);
    }

    #[test]
    fn auto_recency_moves_to_tail() {
        let mut t = table(8);
        let q = t.new_queue(true);
        for i in 0..4 {
            t.enqueue_tail(q, FrameId(i)).expect("enqueue");
        }
        // Touch frame 1: it becomes most-recently-used (tail).
        t.touch(FrameId(1), false).expect("touch");
        let order: Vec<_> = t.iter_queue(q).map(|f| f.0).collect();
        assert_eq!(order, vec![0, 2, 3, 1]);
        // LRU victim is the head; MRU victim is the tail.
        assert_eq!(t.queue_head(q).expect("head"), Some(FrameId(0)));
        assert_eq!(t.queue_tail(q).expect("tail"), Some(FrameId(1)));
    }

    #[test]
    fn non_recency_queue_does_not_reorder_on_touch() {
        let mut t = table(4);
        let q = t.new_queue(false);
        for i in 0..3 {
            t.enqueue_tail(q, FrameId(i)).expect("enqueue");
        }
        t.touch(FrameId(0), false).expect("touch");
        let order: Vec<_> = t.iter_queue(q).map(|f| f.0).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn bad_ids_are_rejected() {
        let mut t = table(2);
        let q = t.new_queue(false);
        assert_eq!(
            t.enqueue_tail(q, FrameId(9)),
            Err(VmError::BadFrame(FrameId(9)))
        );
        assert_eq!(t.queue_len(QueueId(7)), Err(VmError::BadQueue(7)));
        assert!(t.frame(FrameId(5)).is_err());
    }

    #[test]
    fn dequeue_from_empty_is_none() {
        let mut t = table(2);
        let q = t.new_queue(false);
        assert_eq!(t.dequeue_head(q).expect("ok"), None);
        assert_eq!(t.dequeue_tail(q).expect("ok"), None);
    }
}

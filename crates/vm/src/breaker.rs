//! A per-device circuit breaker for the write-back path.
//!
//! The pageout pump normally assumes the paging device mostly works: torn
//! writes re-issue immediately and the in-flight list is unbounded. Under a
//! *persistently* faulty device (ROADMAP open item 1's all-torn-and-delayed
//! plan) that strategy livelocks — every re-issue burns a retry budget
//! charge and the free list never grows. [`CircuitBreaker`] is the error
//! scoreboard that detects this: an integer EWMA of submission outcomes
//! trips the breaker `Closed → Open`, after which re-submissions are gated
//! by an exponential backoff and a bounded in-flight window, and periodic
//! half-open probe writes decide when the device has healed and the breaker
//! can close again.
//!
//! Everything is integer arithmetic on the virtual clock — no floats, no
//! wall time — so breaker decisions replay bit-for-bit with the rest of the
//! simulation.

use hipec_sim::{SimDuration, SimTime};

/// Where the breaker is in its trip/probe/close cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// The device is healthy; the pump runs at full speed.
    #[default]
    Closed,
    /// The device is misbehaving; submissions wait out a backoff.
    Open,
    /// Probes are succeeding; a few more clean ones close the breaker.
    HalfOpen,
}

/// Tuning knobs. The defaults trip after three consecutive failures and
/// need roughly five clean probes to close again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerParams {
    /// EWMA weight of each new sample, in milli-units (0–1000).
    pub alpha_milli: u64,
    /// Failure score at or above which the breaker trips.
    pub trip_milli: u64,
    /// Failure score at or below which a probe streak may close it.
    pub close_milli: u64,
    /// Backoff after the trip (doubles per failed probe).
    pub backoff_base: SimDuration,
    /// Backoff ceiling.
    pub backoff_max: SimDuration,
    /// Maximum writes in flight while the breaker is not closed.
    pub max_inflight_degraded: usize,
    /// Consecutive successful probes required before closing.
    pub close_after: u32,
}

impl Default for BreakerParams {
    fn default() -> Self {
        BreakerParams {
            alpha_milli: 250,
            trip_milli: 500,
            close_milli: 125,
            backoff_base: SimDuration::from_ms(5),
            backoff_max: SimDuration::from_ms(320),
            max_inflight_degraded: 2,
            close_after: 3,
        }
    }
}

/// What one recorded outcome did to the breaker (drives trace emission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// No state change worth tracing.
    None,
    /// The score crossed the trip threshold: `Closed → Open`.
    Tripped,
    /// A degraded-mode submission served as a probe.
    Probed {
        /// The probe succeeded (accepted and not torn).
        ok: bool,
    },
    /// A probe streak closed the breaker: `HalfOpen → Closed`.
    Closed,
    /// The backoff budget is spent: probes kept failing at the backoff
    /// ceiling. The device should be declared dead and drained.
    Exhausted,
}

/// Cumulative breaker counters (exported through `KernelStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerCounters {
    /// Times the breaker tripped open.
    pub trips: u64,
    /// Times it closed again.
    pub closes: u64,
    /// Degraded-mode probe submissions.
    pub probes: u64,
    /// Submissions refused or postponed while degraded.
    pub deferred: u64,
}

/// The error scoreboard itself. One per paging device.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    params: BreakerParams,
    state: BreakerState,
    /// Failure score: EWMA over {0 = ok, 1000 = failed} samples.
    ewma_milli: u64,
    backoff: SimDuration,
    next_probe_at: SimTime,
    probe_successes: u32,
    /// Consecutive failed probes taken while the backoff already sat at
    /// its ceiling. Resets on any successful probe.
    maxed_failures: u32,
    /// Failed-probes-at-the-ceiling budget after which [`record`] reports
    /// [`BreakerTransition::Exhausted`]. `None` disables escalation.
    dead_budget: Option<u32>,
    counters: BreakerCounters,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerParams::default())
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(params: BreakerParams) -> Self {
        CircuitBreaker {
            params,
            state: BreakerState::Closed,
            ewma_milli: 0,
            backoff: params.backoff_base,
            next_probe_at: SimTime::ZERO,
            probe_successes: 0,
            maxed_failures: 0,
            dead_budget: None,
            counters: BreakerCounters::default(),
        }
    }

    /// Arms (or disarms) permanent-failure escalation: after `budget`
    /// consecutive failed probes at the backoff ceiling, [`record`] returns
    /// [`BreakerTransition::Exhausted`] instead of another failed probe.
    pub fn set_dead_budget(&mut self, budget: Option<u32>) {
        self.dead_budget = budget;
    }

    /// The escalation budget in effect, if any.
    pub fn dead_budget(&self) -> Option<u32> {
        self.dead_budget
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// True while the device is considered healthy.
    pub fn is_closed(&self) -> bool {
        self.state == BreakerState::Closed
    }

    /// Current failure score (milli-units, 0–1000).
    pub fn ewma_milli(&self) -> u64 {
        self.ewma_milli
    }

    /// The tuning in effect.
    pub fn params(&self) -> &BreakerParams {
        &self.params
    }

    /// Cumulative counters.
    pub fn counters(&self) -> BreakerCounters {
        self.counters
    }

    /// Earliest virtual time the next degraded-mode probe may be submitted.
    pub fn next_probe_at(&self) -> SimTime {
        self.next_probe_at
    }

    /// True if a degraded-mode submission is allowed at `now` given the
    /// current in-flight depth.
    pub fn probe_due(&self, now: SimTime, inflight: usize) -> bool {
        self.state != BreakerState::Closed
            && now >= self.next_probe_at
            && inflight < self.params.max_inflight_degraded
    }

    /// Counts a submission the pump refused or postponed while degraded.
    pub fn note_deferred(&mut self) {
        self.counters.deferred += 1;
    }

    fn update_ewma(&mut self, ok: bool) {
        let sample: u64 = if ok { 0 } else { 1000 };
        let a = self.params.alpha_milli.min(1000);
        self.ewma_milli = (a * sample + (1000 - a) * self.ewma_milli) / 1000;
    }

    /// Records one submission outcome (`ok` = accepted and not torn) and
    /// returns the resulting transition. While closed this only moves the
    /// score; while open or half-open the submission *is* a probe and its
    /// outcome steers the backoff / close streak.
    pub fn record(&mut self, now: SimTime, ok: bool) -> BreakerTransition {
        match self.state {
            BreakerState::Closed => {
                self.update_ewma(ok);
                if self.ewma_milli >= self.params.trip_milli {
                    self.state = BreakerState::Open;
                    self.counters.trips += 1;
                    self.backoff = self.params.backoff_base;
                    self.next_probe_at = now + self.backoff;
                    self.probe_successes = 0;
                    self.maxed_failures = 0;
                    BreakerTransition::Tripped
                } else {
                    BreakerTransition::None
                }
            }
            BreakerState::Open | BreakerState::HalfOpen => {
                self.counters.probes += 1;
                self.update_ewma(ok);
                if ok {
                    self.state = BreakerState::HalfOpen;
                    self.maxed_failures = 0;
                    self.probe_successes += 1;
                    if self.probe_successes >= self.params.close_after
                        && self.ewma_milli <= self.params.close_milli
                    {
                        self.state = BreakerState::Closed;
                        self.counters.closes += 1;
                        self.backoff = self.params.backoff_base;
                        self.probe_successes = 0;
                        return BreakerTransition::Closed;
                    }
                    // A clean probe earns the next one immediately.
                    self.next_probe_at = now;
                    BreakerTransition::Probed { ok: true }
                } else {
                    self.state = BreakerState::Open;
                    self.probe_successes = 0;
                    self.backoff = self
                        .backoff
                        .saturating_mul(2)
                        .min(self.params.backoff_max)
                        .max(self.params.backoff_base);
                    self.next_probe_at = now + self.backoff;
                    if self.backoff == self.params.backoff_max {
                        self.maxed_failures += 1;
                        if let Some(budget) = self.dead_budget {
                            if self.maxed_failures >= budget {
                                return BreakerTransition::Exhausted;
                            }
                        }
                    }
                    BreakerTransition::Probed { ok: false }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_consecutive_failures() {
        let mut b = CircuitBreaker::default();
        let now = SimTime::ZERO;
        assert_eq!(b.record(now, false), BreakerTransition::None); // 250
        assert_eq!(b.record(now, false), BreakerTransition::None); // 437
        assert_eq!(b.record(now, false), BreakerTransition::Tripped); // 578
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.counters().trips, 1);
        assert!(b.next_probe_at() > now);
    }

    #[test]
    fn successes_keep_it_closed() {
        let mut b = CircuitBreaker::default();
        for _ in 0..100 {
            assert_eq!(b.record(SimTime::ZERO, true), BreakerTransition::None);
        }
        assert!(b.is_closed());
        assert_eq!(b.ewma_milli(), 0);
    }

    #[test]
    fn failed_probes_double_the_backoff_to_the_cap() {
        let mut b = CircuitBreaker::default();
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            b.record(now, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        let base = b.params().backoff_base;
        let mut expected = base;
        for _ in 0..10 {
            now = b.next_probe_at();
            assert!(b.probe_due(now, 0));
            assert_eq!(
                b.record(now, false),
                BreakerTransition::Probed { ok: false }
            );
            expected = expected.saturating_mul(2).min(b.params().backoff_max);
            assert_eq!(b.next_probe_at(), now + expected);
        }
        assert_eq!(expected, b.params().backoff_max);
    }

    #[test]
    fn probe_streak_closes_and_resets_backoff() {
        let mut b = CircuitBreaker::default();
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            b.record(now, false);
        }
        let mut closed = false;
        for _ in 0..32 {
            now = b.next_probe_at();
            if b.record(now, true) == BreakerTransition::Closed {
                closed = true;
                break;
            }
        }
        assert!(closed, "a clean streak must close the breaker");
        assert!(b.is_closed());
        assert_eq!(b.counters().closes, 1);
        assert!(b.ewma_milli() <= b.params().close_milli);
    }

    #[test]
    fn half_open_reopens_on_a_failed_probe() {
        let mut b = CircuitBreaker::default();
        for _ in 0..3 {
            b.record(SimTime::ZERO, false);
        }
        let now = b.next_probe_at();
        assert_eq!(b.record(now, true), BreakerTransition::Probed { ok: true });
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(
            b.record(now, false),
            BreakerTransition::Probed { ok: false }
        );
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.next_probe_at() > now);
    }

    #[test]
    fn probe_gating_respects_time_and_inflight_bound() {
        let mut b = CircuitBreaker::default();
        for _ in 0..3 {
            b.record(SimTime::ZERO, false);
        }
        let due = b.next_probe_at();
        assert!(!b.probe_due(SimTime::ZERO, 0), "backoff not elapsed");
        assert!(b.probe_due(due, 0));
        let cap = b.params().max_inflight_degraded;
        assert!(!b.probe_due(due, cap), "in-flight window full");
        assert!(
            !CircuitBreaker::default().probe_due(due, 0),
            "closed ≠ probing"
        );
    }

    #[test]
    fn dead_budget_exhausts_after_failed_probes_at_the_ceiling() {
        let mut b = CircuitBreaker::default();
        b.set_dead_budget(Some(3));
        assert_eq!(b.dead_budget(), Some(3));
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            b.record(now, false);
        }
        // Backoff after each failed probe: 10, 20, 40, 80, 160, 320 ms.
        // The sixth probe lands on the ceiling (budget charge 1); two more
        // ceiling failures exhaust the budget of 3 on the eighth probe.
        let mut transitions = Vec::new();
        for _ in 0..8 {
            now = b.next_probe_at();
            transitions.push(b.record(now, false));
        }
        assert_eq!(
            transitions
                .iter()
                .filter(|t| **t == BreakerTransition::Exhausted)
                .count(),
            1,
            "exactly one exhaustion in {transitions:?}"
        );
        assert_eq!(transitions[7], BreakerTransition::Exhausted);
        assert_eq!(b.state(), BreakerState::Open, "exhaustion never closes");
    }

    #[test]
    fn clean_probe_resets_the_dead_budget() {
        let mut b = CircuitBreaker::default();
        b.set_dead_budget(Some(2));
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            b.record(now, false);
        }
        // Six failed probes: 10 → 20 → 40 → 80 → 160 → 320 ms. The last
        // doubling lands on the ceiling, spending one budget charge.
        for _ in 0..6 {
            now = b.next_probe_at();
            assert_eq!(
                b.record(now, false),
                BreakerTransition::Probed { ok: false }
            );
        }
        // A clean probe wipes the streak.
        now = b.next_probe_at();
        assert_eq!(b.record(now, true), BreakerTransition::Probed { ok: true });
        // Two more ceiling failures are needed again.
        now = b.next_probe_at();
        assert_eq!(
            b.record(now, false),
            BreakerTransition::Probed { ok: false }
        );
        now = b.next_probe_at();
        assert_eq!(b.record(now, false), BreakerTransition::Exhausted);
    }

    #[test]
    fn without_a_budget_probes_fail_forever() {
        let mut b = CircuitBreaker::default();
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            b.record(now, false);
        }
        for _ in 0..64 {
            now = b.next_probe_at();
            assert_eq!(
                b.record(now, false),
                BreakerTransition::Probed { ok: false }
            );
        }
    }

    #[test]
    fn replay_is_exact() {
        let drive = |b: &mut CircuitBreaker| {
            let mut log = Vec::new();
            let mut now = SimTime::ZERO;
            for i in 0..200u64 {
                now += SimDuration::from_us(130);
                let ok = (i / 7) % 3 != 0;
                log.push((b.record(now, ok), b.state(), b.ewma_milli()));
            }
            log
        };
        let mut a = CircuitBreaker::default();
        let mut b = CircuitBreaker::default();
        assert_eq!(drive(&mut a), drive(&mut b));
        assert_eq!(a.counters(), b.counters());
    }
}

//! Fundamental identifiers and constants of the simulated VM subsystem.

use core::fmt;

/// Page size in bytes — 4096, as on the paper's i486 hardware.
pub const PAGE_SIZE: u64 = 4096;

/// Converts a byte count to a page count, rounding up.
pub const fn bytes_to_pages(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// A physical page frame index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u32);

/// A backing-device identifier: an index into the kernel's device table.
/// Device 0 always exists (built from [`crate::KernelParams::disk`]) and
/// backs the default-managed pool and any region not bound elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviceId(pub u32);

/// A kernel memory-object identifier (one per `VmObject`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

/// A task (address space) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// A virtual address within a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VAddr(pub u64);

/// A page index within a memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageOffset(pub u64);

impl VAddr {
    /// The virtual page number containing this address.
    pub const fn vpage(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// The byte offset within the page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev#{}", self.0)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// Errors surfaced by the VM substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// The task id does not exist.
    NoSuchTask(TaskId),
    /// The object id does not exist.
    NoSuchObject(ObjectId),
    /// The address is not covered by any map entry.
    UnmappedAddress(TaskId, VAddr),
    /// The requested region overlaps an existing map entry.
    RegionOverlap(VAddr),
    /// The global frame pool cannot satisfy the request.
    OutOfFrames {
        /// Frames requested.
        requested: u64,
        /// Frames available.
        available: u64,
    },
    /// The frame index is out of range.
    BadFrame(FrameId),
    /// The frame is already on a queue and cannot be enqueued again.
    FrameAlreadyQueued(FrameId),
    /// The frame is not on the expected queue.
    FrameNotQueued(FrameId),
    /// The queue id does not exist.
    BadQueue(u32),
    /// The backing-device id does not exist in the device table.
    NoSuchDevice(DeviceId),
    /// The device exists but is not Active (draining, removed or dead), so
    /// it cannot accept new bindings or be drained again.
    DeviceUnavailable(DeviceId),
    /// The device cannot be removed: no other Active device exists to
    /// receive its objects.
    LastDevice(DeviceId),
    /// A dirty frame was released without being flushed first.
    DirtyFrameFreed(FrameId),
    /// The frame is busy (an in-flight flush) and cannot be evicted or
    /// freed until its write completes.
    FrameBusy(FrameId),
    /// The backing store rejected the operation.
    Backing(hipec_disk::backing::BackingError),
    /// The paging device reported an I/O failure.
    Device(hipec_disk::DiskFault),
    /// A zero-page region request.
    EmptyRegion,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NoSuchTask(t) => write!(f, "no such task {}", t.0),
            VmError::NoSuchObject(o) => write!(f, "no such object {}", o.0),
            VmError::UnmappedAddress(t, a) => {
                write!(f, "task {} touched unmapped address {a}", t.0)
            }
            VmError::RegionOverlap(a) => write!(f, "region at {a} overlaps an existing mapping"),
            VmError::OutOfFrames {
                requested,
                available,
            } => write!(
                f,
                "frame pool exhausted: requested {requested}, available {available}"
            ),
            VmError::BadFrame(id) => write!(f, "invalid {id}"),
            VmError::FrameAlreadyQueued(id) => write!(f, "{id} is already on a queue"),
            VmError::FrameNotQueued(id) => write!(f, "{id} is not on the expected queue"),
            VmError::BadQueue(q) => write!(f, "invalid queue id {q}"),
            VmError::NoSuchDevice(d) => write!(f, "no such backing device {d}"),
            VmError::DeviceUnavailable(d) => write!(f, "backing device {d} is not active"),
            VmError::LastDevice(d) => {
                write!(f, "cannot remove {d}: no surviving active device")
            }
            VmError::DirtyFrameFreed(id) => write!(f, "dirty {id} released without flush"),
            VmError::FrameBusy(id) => write!(f, "{id} is busy (flush in flight)"),
            VmError::Backing(e) => write!(f, "backing store: {e}"),
            VmError::Device(e) => write!(f, "paging device: {e}"),
            VmError::EmptyRegion => write!(f, "zero-sized region"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<hipec_disk::backing::BackingError> for VmError {
    fn from(e: hipec_disk::backing::BackingError) -> Self {
        VmError::Backing(e)
    }
}

impl From<hipec_disk::DiskFault> for VmError {
    fn from(e: hipec_disk::DiskFault) -> Self {
        VmError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_page_conversions() {
        assert_eq!(bytes_to_pages(0), 0);
        assert_eq!(bytes_to_pages(1), 1);
        assert_eq!(bytes_to_pages(PAGE_SIZE), 1);
        assert_eq!(bytes_to_pages(PAGE_SIZE + 1), 2);
        assert_eq!(bytes_to_pages(40 * 1024 * 1024), 10_240);
    }

    #[test]
    fn vaddr_decomposition() {
        let a = VAddr(3 * PAGE_SIZE + 17);
        assert_eq!(a.vpage(), 3);
        assert_eq!(a.page_offset(), 17);
    }

    #[test]
    fn errors_render() {
        let e = VmError::OutOfFrames {
            requested: 10,
            available: 3,
        };
        assert!(e.to_string().contains("requested 10"));
        assert!(VmError::UnmappedAddress(TaskId(1), VAddr(0x1000))
            .to_string()
            .contains("0x1000"));
    }
}

//! Device lifecycle: hot-unplug drains, permanent-failure escalation and
//! hot/cold tier migration.
//!
//! The device table stops being static here. [`Kernel::remove_device`]
//! drains a live device onto a surviving sibling: every bound object is
//! re-routed, its backing pages are queued as *migration copies* on the
//! survivor, parked torn retries are re-homed (budget-exempt — they carry
//! the drained page's only copy), and in-flight flushes complete naturally
//! with torn completions re-homing at reap time. The same drain runs when
//! a circuit breaker exhausts its backoff budget and the entry is declared
//! [`DeviceState::Dead`], and the same copy machinery serves steady-state
//! hot/cold migration between storage tiers
//! ([`Kernel::migrate_object`], [`Kernel::rebalance_tiers`]).
//!
//! Everything is driven by the pageout pump and the virtual clock, so a
//! drain against a mid-breaker-trip sibling parks deterministically and
//! resumes on that breaker's half-open probe windows — unplug storms
//! replay bit-for-bit.

use std::collections::HashSet;

use crate::device::{DeviceState, InflightMigration, MigrTag};
use crate::kernel::{Kernel, PumpBudget, RetryTag};
use crate::object::Backing;
use crate::trace::VmEvent;
use crate::types::{DeviceId, ObjectId, VmError};

impl Kernel {
    /// Hot-unplugs device `dev`: re-binds every object it backs onto the
    /// lowest-id surviving Active device, queues backing-page copies for
    /// the move, re-homes parked torn retries, and leaves in-flight
    /// flushes to complete (torn completions re-home at reap). Returns
    /// the survivor.
    ///
    /// The entry transitions `Active → Draining` immediately and reaches
    /// `Removed` once no outstanding work traces back to it — drive the
    /// pump ([`Kernel::pump`] / [`Kernel::next_flush_completion`]) to
    /// completion. The drain parks while the survivor's breaker is open
    /// and resumes on its half-open probes; no page is ever abandoned.
    pub fn remove_device(&mut self, dev: DeviceId) -> Result<DeviceId, VmError> {
        let di = dev.0 as usize;
        if di >= self.devices.len() {
            return Err(VmError::NoSuchDevice(dev));
        }
        if !self.devices[di].is_active() {
            return Err(VmError::DeviceUnavailable(dev));
        }
        let target = self.pick_survivor(dev)?;
        self.devices[di].state = DeviceState::Draining;
        if let Err(e) = self.drain_device(di, target, false) {
            // Extent allocation on the survivor failed before any state
            // was touched: the unplug is refused, the entry stays Active.
            self.devices[di].state = DeviceState::Active;
            self.devices[di].drain_to = None;
            return Err(e);
        }
        self.stats.bump("devices_unplugged");
        self.charge(self.cost.null_syscall);
        // An idle device with nothing to copy completes immediately.
        self.finish_drains();
        Ok(target)
    }

    /// Re-binds `object` to Active device `to`, queueing backing-page
    /// copies for every page the new device must be able to serve (all
    /// pages of a file object; the paged-out set of an anonymous one).
    /// Returns the number of copies queued. The copies are driven by the
    /// pump on the receiving device; in-flight work on the old device
    /// completes there and torn retries follow the object at reap time.
    pub fn migrate_object(&mut self, object: ObjectId, to: DeviceId) -> Result<u64, VmError> {
        let ti = to.0 as usize;
        if ti >= self.devices.len() {
            return Err(VmError::NoSuchDevice(to));
        }
        if !self.devices[ti].is_active() {
            return Err(VmError::DeviceUnavailable(to));
        }
        let (from, offs, size, need_extent) = {
            let o = self.object(object)?;
            let offs = copy_offsets(o.backing, o.size_pages, &o.paged_out);
            let need_extent =
                matches!(o.backing, Backing::File) || o.swap_allocated || !offs.is_empty();
            (o.device, offs, o.size_pages, need_extent)
        };
        if from == to {
            return Ok(0);
        }
        if need_extent && !self.devices[ti].backing.has_extent(object.0 as u64) {
            self.devices[ti].backing.allocate(object.0 as u64, size)?;
        }
        for off in &offs {
            let lba = self.devices[ti].backing.locate(object.0 as u64, *off)?.lba;
            self.devices[ti].migr_q.push(
                lba,
                MigrTag {
                    object,
                    offset: *off,
                    from,
                    attempts: 0,
                },
            );
        }
        let pages = offs.len() as u64;
        let om = self.object_mut(object)?;
        om.device = to;
        om.migrations += 1;
        self.stats.bump("object_migrations");
        self.emit(VmEvent::ObjectMigrated {
            object,
            from,
            to,
            pages,
            forced: false,
        });
        self.charge(self.cost.null_syscall);
        Ok(pages)
    }

    /// Hot/cold tier rebalancing driven by per-object fault rates: objects
    /// with at least `hot_threshold` faults since the last call are
    /// promoted to the fastest Active tier, objects with none are demoted
    /// to the slowest; every fault counter then resets for the next
    /// interval. Returns `(promotions, demotions)`.
    pub fn rebalance_tiers(&mut self, hot_threshold: u64) -> (u64, u64) {
        let fast = self
            .devices
            .iter()
            .filter(|d| d.is_active())
            .max_by_key(|d| (d.tier(), std::cmp::Reverse(d.id.0)))
            .map(|d| d.id);
        let slow = self
            .devices
            .iter()
            .filter(|d| d.is_active())
            .min_by_key(|d| (d.tier(), d.id.0))
            .map(|d| d.id);
        let (Some(fast), Some(slow)) = (fast, slow) else {
            return (0, 0);
        };
        let mut promotions = 0;
        let mut demotions = 0;
        if fast != slow {
            for i in 0..self.objects.len() {
                let (oid, dev, faults) = {
                    let o = &self.objects[i];
                    (o.id, o.device, o.fault_rate)
                };
                if !self.devices[dev.0 as usize].is_active() {
                    continue;
                }
                if faults >= hot_threshold.max(1) && dev != fast {
                    if self.migrate_object(oid, fast).is_ok() {
                        promotions += 1;
                    }
                } else if faults == 0 && dev != slow && self.migrate_object(oid, slow).is_ok() {
                    demotions += 1;
                }
            }
        }
        for o in &mut self.objects {
            o.fault_rate = 0;
        }
        self.stats.add("tier_promotions", promotions);
        self.stats.add("tier_demotions", demotions);
        (promotions, demotions)
    }

    /// The lowest-id Active device other than `dev`.
    pub(crate) fn pick_survivor(&self, dev: DeviceId) -> Result<DeviceId, VmError> {
        self.devices
            .iter()
            .find(|d| d.is_active() && d.id != dev)
            .map(|d| d.id)
            .ok_or(VmError::LastDevice(dev))
    }

    /// The shared drain: re-binds every object bound to `devices[di]` onto
    /// `target`, allocating target extents up front (so an out-of-space
    /// survivor fails before any state changes), cancelling copies queued
    /// *onto* the dying entry (their offsets re-enter through the plan),
    /// queueing migration copies, and re-homing parked torn retries.
    pub(crate) fn drain_device(
        &mut self,
        di: usize,
        target: DeviceId,
        forced: bool,
    ) -> Result<(), VmError> {
        let dev = self.devices[di].id;
        let ti = target.0 as usize;
        // Pages whose frames sit in this device's retry queue or torn
        // in-flight list need no copy: the re-homed flush writes the page
        // to its new home directly.
        let mut rehoming: HashSet<(ObjectId, u64)> = HashSet::new();
        for p in self.devices[di].retry_q.iter() {
            if let Some((o, off)) = self.frames.frame(p.tag.frame)?.owner {
                rehoming.insert((o, off.0));
            }
        }
        for i in &self.devices[di].inflight {
            if i.torn {
                if let Some((o, off)) = self.frames.frame(i.frame)?.owner {
                    rehoming.insert((o, off.0));
                }
            }
        }
        // Plan (object id order — deterministic): which offsets each
        // re-bound object needs copied onto the target.
        let mut plan: Vec<(ObjectId, u64, Vec<u64>, bool)> = Vec::new();
        for o in &self.objects {
            if o.device != dev {
                continue;
            }
            let mut offs = copy_offsets(o.backing, o.size_pages, &o.paged_out);
            offs.retain(|off| !rehoming.contains(&(o.id, *off)));
            let need_extent =
                matches!(o.backing, Backing::File) || o.swap_allocated || !offs.is_empty();
            plan.push((o.id, o.size_pages, offs, need_extent));
        }
        // Allocate every needed target extent before mutating anything.
        for (oid, size, _, need_extent) in &plan {
            if *need_extent && !self.devices[ti].backing.has_extent(oid.0 as u64) {
                self.devices[ti].backing.allocate(oid.0 as u64, *size)?;
            }
        }
        self.devices[di].drain_to = Some(target);
        // Cancel copies queued onto the dying entry: the objects they
        // serve are bound to it, so the plan re-covers their offsets
        // against the new target.
        let mut cancelled = self.devices[di].migr_inflight.len() as u64;
        self.devices[di].migr_inflight.clear();
        while self.devices[di].migr_q.pop_next(0, |_| 0).is_some() {
            cancelled += 1;
        }
        if cancelled > 0 {
            self.stats.add("migrations_cancelled", cancelled);
        }
        let objects = plan.len() as u64;
        let pages: u64 = plan.iter().map(|(_, _, v, _)| v.len() as u64).sum();
        self.emit(VmEvent::DeviceDraining {
            device: dev,
            to: target,
            objects,
            pages,
        });
        self.stats.bump("device_drains");
        // Re-bind and queue the copies.
        for (oid, _, offs, _) in plan {
            for off in &offs {
                let lba = self.devices[ti].backing.locate(oid.0 as u64, *off)?.lba;
                self.devices[ti].migr_q.push(
                    lba,
                    MigrTag {
                        object: oid,
                        offset: *off,
                        from: dev,
                        attempts: 0,
                    },
                );
            }
            let n = offs.len() as u64;
            let om = self.object_mut(oid)?;
            om.device = target;
            om.migrations += 1;
            self.stats.bump("object_migrations");
            if forced {
                self.stats.bump("forced_migrations");
                self.stats.add("forced_migration_pages", n);
            }
            self.emit(VmEvent::ObjectMigrated {
                object: oid,
                from: dev,
                to: target,
                pages: n,
                forced,
            });
        }
        // Re-home parked torn retries to their objects' new homes. Their
        // frames carry the only copy of the data, so the tags are marked
        // budget-exempt.
        let mut moved = Vec::new();
        while let Some(p) = self.devices[di].retry_q.pop_next(0, |_| 0) {
            moved.push(p.tag);
        }
        for tag in moved {
            let (o, off) = self
                .frames
                .frame(tag.frame)?
                .owner
                .expect("retry frames keep their owner");
            let home = self.object(o)?.device;
            let hi = home.0 as usize;
            let lba = self.devices[hi].backing.locate(o.0 as u64, off.0)?.lba;
            self.devices[hi].retry_q.push(
                lba,
                RetryTag {
                    frame: tag.frame,
                    attempts: tag.attempts,
                    rehomed_from: Some(dev),
                },
            );
            self.stats.bump("retries_rehomed");
        }
        Ok(())
    }

    /// Escalates entries whose breaker reported `Exhausted` since the last
    /// pump: `→ Dead`, then the same drain as a hot-unplug (attributed as
    /// forced migration). Runs outside the re-issue loops.
    pub(crate) fn process_dead_pending(&mut self) {
        for di in 0..self.devices.len() {
            if !self.devices[di].dead_pending {
                continue;
            }
            self.devices[di].dead_pending = false;
            let was = self.devices[di].state;
            match was {
                DeviceState::Active | DeviceState::Draining => {}
                _ => continue,
            }
            let device = self.devices[di].id;
            let ewma_milli = self.devices[di].breaker.ewma_milli();
            self.devices[di].state = DeviceState::Dead;
            self.stats.bump("devices_dead");
            self.emit(VmEvent::DeviceDead { device, ewma_milli });
            if was == DeviceState::Draining {
                // The unplug drain is already running; it continues
                // unchanged while the entry stays Dead.
                continue;
            }
            match self.pick_survivor(device) {
                Ok(target) => {
                    if self.drain_device(di, target, true).is_err() {
                        // The survivor has no room for the extents; the
                        // entry stays Dead with nothing re-bound.
                        self.stats.bump("drain_failed");
                    }
                }
                Err(_) => {
                    // The last Active device died: its objects have
                    // nowhere to go and keep faulting against it.
                    self.stats.bump("dead_without_survivor");
                }
            }
        }
    }

    /// Drives one device's migration queue: reaps due copies (torn ones
    /// re-queue — migration copies are never abandoned), then submits
    /// queued copies while the breaker is closed — up to the pump call's
    /// shared submission budget — or as gated probes while it is open.
    /// Mirrors the torn-retry pump, so a drain against a tripped survivor
    /// parks and resumes on half-open probes.
    pub(crate) fn pump_migration(&mut self, di: usize, budget: &mut PumpBudget) {
        let now = self.clock.now();
        let mut done = Vec::new();
        self.devices[di].migr_inflight.retain(|m| {
            if m.done <= now {
                done.push(*m);
                false
            } else {
                true
            }
        });
        for m in done {
            if m.torn {
                self.stats.bump("migration_retries");
                self.devices[di].migr_q.push(m.lba, m.tag);
                continue;
            }
            self.devices[di].migr_done += 1;
            self.stats.bump("migrated_pages");
        }
        let mut still = Vec::new();
        while self.devices[di].breaker.is_closed() {
            if !self.devices[di].migr_q.is_empty() && budget.left == 0 {
                budget.deferred += self.devices[di].migr_q.len() as u64;
                break;
            }
            let Some(pending) = self.devices[di].migr_q.pop_next(0, |_| 0) else {
                break;
            };
            budget.left -= 1;
            let now = self.clock.now();
            match self.devices[di].disk.write(pending.lba, now) {
                Ok(c) => {
                    self.breaker_record_write(di, !c.torn);
                    #[cfg(feature = "metrics")]
                    self.devices[di].lat_flush.record(c.done.since(now));
                    self.devices[di].migr_inflight.push(InflightMigration {
                        done: c.done,
                        torn: c.torn,
                        lba: pending.lba,
                        tag: bump_attempts(pending.tag),
                    });
                }
                Err(_) => {
                    self.breaker_record_write(di, false);
                    self.stats.bump("migration_rejects");
                    still.push((pending.lba, bump_attempts(pending.tag)));
                }
            }
        }
        for (lba, tag) in still {
            self.devices[di].migr_q.push(lba, tag);
        }
        if !self.devices[di].breaker.is_closed() {
            while self.devices[di]
                .breaker
                .probe_due(self.clock.now(), self.devices[di].degraded_inflight())
            {
                let Some(pending) = self.devices[di].migr_q.pop_next(0, |_| 0) else {
                    break;
                };
                let now = self.clock.now();
                match self.devices[di].disk.write(pending.lba, now) {
                    Ok(c) => {
                        self.breaker_record_write(di, !c.torn);
                        #[cfg(feature = "metrics")]
                        self.devices[di].lat_flush.record(c.done.since(now));
                        self.devices[di].migr_inflight.push(InflightMigration {
                            done: c.done,
                            torn: c.torn,
                            lba: pending.lba,
                            tag: bump_attempts(pending.tag),
                        });
                    }
                    Err(_) => {
                        self.breaker_record_write(di, false);
                        self.stats.bump("migration_rejects");
                        // A failed probe pushed the next window out; keep
                        // FCFS order and wait for it.
                        self.devices[di]
                            .migr_q
                            .push_front(pending.lba, bump_attempts(pending.tag));
                    }
                }
            }
            if !self.devices[di].migr_q.is_empty() {
                self.devices[di].breaker.note_deferred();
            }
        }
    }

    /// Completes drains: a Draining entry becomes Removed (a Dead one is
    /// marked drained) once it holds no work and no migration copy or
    /// re-homed flush anywhere still traces back to it.
    pub(crate) fn finish_drains(&mut self) {
        for di in 0..self.devices.len() {
            let draining = match self.devices[di].state {
                DeviceState::Draining => true,
                DeviceState::Dead => {
                    !self.devices[di].drained && self.devices[di].drain_to.is_some()
                }
                _ => false,
            };
            if !draining {
                continue;
            }
            let dev = self.devices[di].id;
            let local_idle = self.devices[di].inflight.is_empty()
                && self.devices[di].retry_q.is_empty()
                && self.devices[di].migr_q.is_empty()
                && self.devices[di].migr_inflight.is_empty();
            if !local_idle {
                continue;
            }
            let outstanding = self.devices.iter().any(|d| {
                d.migr_q.iter().any(|p| p.tag.from == dev)
                    || d.migr_inflight.iter().any(|m| m.tag.from == dev)
                    || d.retry_q.iter().any(|p| p.tag.rehomed_from == Some(dev))
                    || d.inflight.iter().any(|i| i.rehomed_from == Some(dev))
            });
            if outstanding {
                continue;
            }
            self.devices[di].drained = true;
            if self.devices[di].state == DeviceState::Draining {
                self.devices[di].state = DeviceState::Removed;
                self.stats.bump("devices_removed");
            } else {
                self.stats.bump("devices_dead_drained");
            }
            self.emit(VmEvent::DeviceDrained { device: dev });
        }
    }
}

/// The offsets a device newly backing an object must be able to serve:
/// every page of a file object, the paged-out set of an anonymous one
/// (sorted — the set iterates in hash order).
fn copy_offsets(
    backing: Backing,
    size_pages: u64,
    paged_out: &std::collections::HashSet<u64>,
) -> Vec<u64> {
    match backing {
        Backing::File => (0..size_pages).collect(),
        Backing::Anonymous => {
            let mut v: Vec<u64> = paged_out.iter().copied().collect();
            v.sort_unstable();
            v
        }
    }
}

/// One more submission on a migration copy (saturating — copies are never
/// abandoned, so long storms must not overflow the counter).
fn bump_attempts(tag: MigrTag) -> MigrTag {
    MigrTag {
        attempts: tag.attempts.saturating_add(1),
        ..tag
    }
}

#[cfg(test)]
mod tests {
    use hipec_disk::{DeviceParams, FaultConfig, FlashParams};

    use crate::device::DeviceState;
    use crate::kernel::{Kernel, KernelParams};
    use crate::types::{DeviceId, VAddr, VmError, PAGE_SIZE};

    fn tight_kernel() -> Kernel {
        let mut p = KernelParams::paper_64mb();
        p.total_frames = 64;
        p.wired_frames = 4;
        p.free_target = 8;
        p.free_min = 4;
        p.inactive_target = 12;
        Kernel::new(p)
    }

    /// Drives the pump until every write-back and migration lifecycle on
    /// every device has closed.
    fn drive(k: &mut Kernel) {
        for _ in 0..100_000 {
            let Some(t) = k.next_flush_completion() else {
                return;
            };
            k.clock.advance_to(t);
            k.pump();
        }
        panic!("pump did not quiesce");
    }

    fn state_of(k: &Kernel, dev: DeviceId) -> DeviceState {
        k.backing_device(dev).expect("device exists").state()
    }

    #[test]
    fn removing_an_idle_device_completes_immediately() {
        let mut k = tight_kernel();
        let dev = k.add_device(DeviceParams::default());
        let t = k.create_task();
        // An anonymous region that never pages out: nothing to copy.
        let (_, obj) = k.vm_allocate_on(dev, t, 4 * PAGE_SIZE).expect("allocate");
        let survivor = k.remove_device(dev).expect("unplug");
        assert_eq!(survivor, DeviceId(0));
        assert_eq!(state_of(&k, dev), DeviceState::Removed);
        assert_eq!(k.device_of(obj).expect("object"), DeviceId(0));
        assert_eq!(k.stats.get("devices_removed"), 1);
        // The table entry is never compacted; ids stay stable.
        assert_eq!(k.device_count(), 2);
    }

    #[test]
    fn removed_and_draining_devices_reject_new_bindings_and_reremoval() {
        let mut k = tight_kernel();
        let dev = k.add_device(DeviceParams::default());
        k.remove_device(dev).expect("unplug");
        let t = k.create_task();
        assert!(matches!(
            k.vm_allocate_on(dev, t, PAGE_SIZE),
            Err(VmError::DeviceUnavailable(_))
        ));
        assert!(matches!(
            k.remove_device(dev),
            Err(VmError::DeviceUnavailable(_))
        ));
        assert!(matches!(
            k.remove_device(DeviceId(0)),
            Err(VmError::LastDevice(_))
        ));
    }

    #[test]
    fn unplug_with_paged_out_data_copies_it_and_serves_reads_from_the_survivor() {
        let mut k = tight_kernel();
        let dev = k.add_device(DeviceParams::default());
        let t = k.create_task();
        let (addr, obj) = k.vm_allocate_on(dev, t, 100 * PAGE_SIZE).expect("allocate");
        for p in 0..100 {
            k.access(t, VAddr(addr.0 + p * PAGE_SIZE), true)
                .expect("write");
        }
        drive(&mut k);
        assert!(k.stats.get("pageouts") > 0, "workload must page out");
        // The drain queues a copy for every paged-out page even though the
        // pump queue is empty; next_flush_completion must surface the
        // migration work so an event-driven driver reaches completion.
        k.remove_device(dev).expect("unplug");
        assert_eq!(state_of(&k, dev), DeviceState::Draining);
        assert!(
            k.next_flush_completion().is_some(),
            "queued migration copies must schedule pump progress"
        );
        drive(&mut k);
        assert_eq!(state_of(&k, dev), DeviceState::Removed);
        assert_eq!(k.device_of(obj).expect("object"), DeviceId(0));
        assert!(k.stats.get("migrated_pages") > 0);
        assert_eq!(k.stats.get("flush_abandoned"), 0);
        // Every page reads back through the survivor.
        for p in 0..100 {
            let r = k.access(t, VAddr(addr.0 + p * PAGE_SIZE), false);
            assert!(r.is_ok(), "page {p} lost in the drain: {r:?}");
        }
        drive(&mut k);
        assert_eq!(k.pending_dead_flushes(), 0);
    }

    #[test]
    fn breaker_exhaustion_declares_the_device_dead_and_force_drains_it() {
        let mut k = tight_kernel();
        let dev = k.add_device(DeviceParams::default());
        // Every accepted write completes torn, forever: the breaker trips,
        // every half-open probe fails, the backoff pegs at its ceiling and
        // the dead budget runs out.
        k.set_fault_plan_on(
            dev,
            FaultConfig {
                torn_permille: 1000,
                ..FaultConfig::quiet(7)
            },
        );
        k.breaker_mut(dev).set_dead_budget(Some(2));
        let t = k.create_task();
        let (addr, obj) = k.vm_allocate_on(dev, t, 100 * PAGE_SIZE).expect("allocate");
        for p in 0..100 {
            k.access(t, VAddr(addr.0 + p * PAGE_SIZE), true)
                .expect("write");
        }
        drive(&mut k);
        assert_eq!(state_of(&k, dev), DeviceState::Dead);
        assert_eq!(k.stats.get("devices_dead"), 1);
        assert_eq!(k.stats.get("breaker_exhausted"), 1);
        assert!(k.stats.get("forced_migrations") > 0);
        assert_eq!(k.device_of(obj).expect("object"), DeviceId(0));
        // The torn retries parked on the dead device re-homed to the
        // survivor and completed there: no page was abandoned.
        assert_eq!(k.stats.get("flush_abandoned"), 0);
        assert_eq!(k.pending_dead_flushes(), 0);
        assert!(k.stats.get("retries_rehomed") > 0);
        assert_eq!(k.stats.get("devices_dead_drained"), 1);
        for p in 0..100 {
            assert!(
                k.access(t, VAddr(addr.0 + p * PAGE_SIZE), false).is_ok(),
                "page {p} lost in the escalation"
            );
        }
    }

    #[test]
    fn rebalance_promotes_hot_objects_to_flash_and_demotes_cold_ones() {
        let mut k = tight_kernel();
        let flash = k.add_device(DeviceParams::Flash(FlashParams::early_flash_card()));
        let t = k.create_task();
        let (hot_addr, hot) = k.vm_allocate(t, 4 * PAGE_SIZE).expect("hot");
        let (_, cold) = k.vm_allocate(t, 4 * PAGE_SIZE).expect("cold");
        for p in 0..4 {
            k.access(t, VAddr(hot_addr.0 + p * PAGE_SIZE), false)
                .expect("touch hot");
        }
        let (promoted, _) = k.rebalance_tiers(4);
        assert_eq!(promoted, 1);
        assert_eq!(k.device_of(hot).expect("hot"), flash);
        assert_eq!(k.device_of(cold).expect("cold"), DeviceId(0));
        assert_eq!(k.object(hot).expect("hot").migrations, 1);
        // Fault rates reset: with no new faults the hot object demotes back.
        let (_, demoted) = k.rebalance_tiers(4);
        assert!(demoted >= 1);
        assert_eq!(k.device_of(hot).expect("hot"), DeviceId(0));
        drive(&mut k);
    }

    #[test]
    fn migrate_object_carries_swapped_pages_to_the_new_device() {
        let mut k = tight_kernel();
        let dev = k.add_device(DeviceParams::default());
        let t = k.create_task();
        let (addr, obj) = k.vm_allocate(t, 100 * PAGE_SIZE).expect("allocate");
        for p in 0..100 {
            k.access(t, VAddr(addr.0 + p * PAGE_SIZE), true)
                .expect("write");
        }
        drive(&mut k);
        let swapped = k.object(obj).expect("object").paged_out.len() as u64;
        assert!(swapped > 0);
        let copies = k.migrate_object(obj, dev).expect("migrate");
        assert_eq!(copies, swapped);
        drive(&mut k);
        assert_eq!(k.stats.get("migrated_pages"), copies);
        assert_eq!(k.device_of(obj).expect("object"), dev);
        for p in 0..100 {
            assert!(
                k.access(t, VAddr(addr.0 + p * PAGE_SIZE), false).is_ok(),
                "page {p} unreadable after migration"
            );
        }
        drive(&mut k);
        assert_eq!(k.pending_dead_flushes(), 0);
    }
}

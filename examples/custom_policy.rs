//! Writing your own policy: pseudo-code → translator → command buffer →
//! kernel, end to end — the full workflow of paper §4.3.4.
//!
//! The policy here protects a "pinned" prefix of the region: the first
//! `pinned` faulted pages are never replaced, the rest live in a FIFO.
//! (A database would pin its index root pages this way.)
//!
//! Run with: `cargo run --example custom_policy`

use hipec_core::HipecKernel;
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

const POLICY: &str = r#"
    // Pages faulted while `pinned_left > 0` go to the pinned queue and are
    // never evicted; everything else cycles through a FIFO.
    queue pinned_q;
    queue fifo_q;
    int pinned_left = 8;

    event PageFault() {
        if (free_count == 0) {
            fifo(fifo_q);
        }
        page p = dequeue_head(free_queue);
        if (pinned_left > 0) {
            pinned_left = pinned_left - 1;
            enqueue_tail(pinned_q, p);
        } else {
            enqueue_tail(fifo_q, p);
        }
        return p;
    }

    event ReclaimFrame() {
        // Give back only unpinned surplus.
        int released = 0;
        while (released < reclaim_target && active_count > 0) {
            if (free_count == 0) {
                fifo(fifo_q);
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

fn main() {
    // 1. Translate.
    let program = match hipec_lang::compile(POLICY) {
        Ok(p) => p,
        Err(diags) => {
            eprintln!("policy does not compile:");
            for d in diags {
                eprintln!("  {d}");
            }
            std::process::exit(1);
        }
    };
    println!("translated: {} commands", program.total_commands());

    // 2. Inspect the command buffer (the paper's Table 2 view).
    println!("\n--- disassembly -------------------------------------");
    print!("{}", hipec_lang::disassemble(&program));
    println!("------------------------------------------------------\n");

    // 3. The buffer ships as 32-bit words behind a magic number.
    let words = program.to_words();
    println!(
        "wire format: {} words, magic 0x{:08X}",
        words.len(),
        words[0]
    );

    // 4. Install and run: 64 pages through a 24-frame pool. The first 8
    //    pages are pinned; page 0 must never fault again.
    let mut kernel = HipecKernel::new(KernelParams::paper_64mb());
    let task = kernel.vm.create_task();
    let (base, _obj, key) = kernel
        .vm_allocate_hipec(task, 64 * PAGE_SIZE, program, 24)
        .expect("policy validates and installs");

    for sweep in 0..4 {
        for p in 0..64u64 {
            kernel
                .access_sync(task, VAddr(base.0 + p * PAGE_SIZE), false)
                .expect("access");
        }
        let faults = kernel.container(key).expect("container").stats.faults;
        println!("sweep {sweep}: cumulative faults {faults}");
    }

    // The pinned pages stayed resident: sweeps 1-3 fault only on the
    // unpinned 56 pages.
    let c = kernel.container(key).expect("container");
    let expected = 64 + 3 * 56;
    println!(
        "\ntotal faults {} (expected {expected}: 64 cold + 3 × 56 unpinned)",
        c.stats.faults
    );
    assert_eq!(c.stats.faults, expected);
    println!("the pinned prefix never re-faulted — the policy works.");
}

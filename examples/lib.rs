//! Example host crate; the runnable programs live in the example targets.

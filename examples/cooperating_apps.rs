//! Frame migration between cooperating applications — the paper's first
//! future-work item (§6): "migrating physical frames between the relevant
//! jobs might be important and necessary".
//!
//! A two-phase pipeline: the *producer* scans a large input region, then
//! goes idle; the *consumer* ramps up afterwards. With plain HiPEC the
//! consumer would have to Request frames from the global manager (and the
//! producer's idle pool would sit wasted until reclamation). With the
//! `Migrate` command the producer's policy hands its frames directly to
//! the consumer as its own phase winds down.
//!
//! Run with: `cargo run --example cooperating_apps`

use hipec_core::HipecKernel;
use hipec_policies::PolicyKind;
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

/// The producer's policy: normal FIFO, plus a `Drain` event that migrates
/// `batch` free frames to the container whose key is in `peer`.
const PRODUCER: &str = r#"
    queue fifo_q;
    int peer = 1;      // the consumer's container key
    int batch = 16;

    event PageFault() {
        if (free_count == 0) {
            fifo(fifo_q);
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(fifo_q, p);
        return p;
    }

    event Drain() {
        // Hand `batch` frames to the peer: evict our own pages into the
        // free queue if needed, then migrate.
        int moved = 0;
        while (moved < batch && allocated_count > 0) {
            if (free_count == 0) {
                fifo(fifo_q);
            }
            migrate(peer);
            moved = moved + 1;
        }
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                fifo(fifo_q);
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// Event number of `Drain` in the producer's program (user events start
/// at 2, after PageFault and ReclaimFrame).
const DRAIN_EVENT: u8 = 2;

fn main() {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 1_024;
    params.wired_frames = 32;
    let mut kernel = HipecKernel::new(params);

    // Producer: 256-frame pool over a 384-page input.
    let producer_task = kernel.vm.create_task();
    let producer_program = hipec_lang::compile(PRODUCER).expect("producer compiles");
    let (pin, _o, producer) = kernel
        .vm_map_hipec(producer_task, 384 * PAGE_SIZE, producer_program, 256)
        .expect("producer installs");

    // Consumer: starts with a deliberately tiny pool (32 frames) for its
    // 256-page working set.
    let consumer_task = kernel.vm.create_task();
    let (cin, _o, consumer) = kernel
        .vm_allocate_hipec(
            consumer_task,
            256 * PAGE_SIZE,
            PolicyKind::Lru.program(),
            32,
        )
        .expect("consumer installs");
    assert_eq!(consumer.0, 1, "the producer policy names container key 1");

    // Phase 1: the producer streams its input.
    for p in 0..384u64 {
        kernel
            .access_sync(producer_task, VAddr(pin.0 + p * PAGE_SIZE), false)
            .expect("producer scan");
    }
    println!(
        "after phase 1: producer holds {} frames, consumer {}",
        kernel.container(producer).expect("p").allocated,
        kernel.container(consumer).expect("c").allocated,
    );

    // The consumer works its set with only 32 frames: it thrashes.
    let consumer_sweep = |kernel: &mut HipecKernel| -> u64 {
        let before = kernel.container(consumer).expect("c").stats.faults;
        for p in 0..256u64 {
            kernel
                .access_sync(consumer_task, VAddr(cin.0 + p * PAGE_SIZE), false)
                .expect("consumer sweep");
        }
        kernel.container(consumer).expect("c").stats.faults - before
    };
    let starved = consumer_sweep(&mut kernel);
    println!("consumer sweep while starved: {starved} faults");

    // Phase 2: the producer drains, migrating frames to the consumer in
    // batches of 16 (each Drain call is what a real producer would run on
    // its phase boundary).
    for _ in 0..14 {
        kernel
            .run_event_raw(producer, DRAIN_EVENT)
            .expect("producer drains");
    }
    println!(
        "after migration: producer holds {} frames, consumer {}",
        kernel.container(producer).expect("p").allocated,
        kernel.container(consumer).expect("c").allocated,
    );

    // Warm the enlarged pool once, then measure the steady state.
    consumer_sweep(&mut kernel);
    let fed = consumer_sweep(&mut kernel);
    println!("consumer sweep after migration: {fed} faults");
    assert!(fed < starved / 4, "migration must relieve the consumer");
    println!("\nframe migration turned the idle producer pool into consumer hits.");
}

//! A multimedia player streaming a large file while a second application
//! works in the background — the interference scenario from the paper's
//! introduction.
//!
//! Streamed frames are played once and never reused. Under the default
//! kernel they still wash through the shared page pool and evict the
//! background application's working set. Under HiPEC the player confines
//! itself to a small private pool with a FIFO policy, and the background
//! application keeps its pages.
//!
//! Run with: `cargo run --example multimedia_stream`

use hipec_core::HipecKernel;
use hipec_policies::PolicyKind;
use hipec_vm::{Kernel, KernelParams, TaskId, VAddr, PAGE_SIZE};
use hipec_workloads::SysKernel;

const STREAM_PAGES: u64 = 3_000; // ≈ 12 MB of video
const HOT_PAGES: u64 = 600; // the background app's working set

fn machine() -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    p.total_frames = 2_048; // an 8 MB machine: the stream cannot fit
    p.wired_frames = 64;
    p
}

/// Plays the stream while the background app keeps touching its hot set.
/// Returns (background faults, stream faults).
fn play(
    k: &mut impl SysKernel,
    player: TaskId,
    stream_base: VAddr,
    bg: TaskId,
    hot_base: VAddr,
) -> (u64, u64) {
    // Warm the background working set.
    for p in 0..HOT_PAGES {
        k.access_wait(bg, VAddr(hot_base.0 + p * PAGE_SIZE), false)
            .expect("warm hot set");
    }
    let bg_warm_faults = k.vm().stats.get("faults");
    let mut stream_faults = 0;
    for p in 0..STREAM_PAGES {
        let before = k.vm().stats.get("faults");
        k.access_wait(player, VAddr(stream_base.0 + p * PAGE_SIZE), false)
            .expect("play frame");
        stream_faults += k.vm().stats.get("faults") - before;
        // The background app touches a few hot pages between frames.
        for h in 0..4 {
            k.access_wait(
                bg,
                VAddr(hot_base.0 + ((p * 4 + h) % HOT_PAGES) * PAGE_SIZE),
                false,
            )
            .expect("background work");
        }
    }
    let bg_faults = k.vm().stats.get("faults") - bg_warm_faults - stream_faults;
    (bg_faults, stream_faults)
}

fn main() {
    println!("streaming {STREAM_PAGES} pages on an 8 MB machine; background app");
    println!("holds a {HOT_PAGES}-page working set\n");

    // Default kernel: the stream and the hot set fight over one pool.
    let mut mach = Kernel::new(machine());
    let player = mach.create_task();
    let (stream, _) = mach
        .vm_map(player, STREAM_PAGES * PAGE_SIZE)
        .expect("map stream");
    let bg = mach.create_task();
    let (hot, _) = mach
        .vm_allocate(bg, HOT_PAGES * PAGE_SIZE)
        .expect("hot set");
    let (bg_faults, stream_faults) = play(&mut mach, player, stream, bg, hot);
    println!("Mach   : stream faults {stream_faults:>6}, background re-faults {bg_faults:>6}");

    // HiPEC kernel: the player asks for a 64-frame private FIFO pool —
    // plenty for play-once data — and stops interfering.
    let mut hipec = HipecKernel::new(machine());
    let player = hipec.vm.create_task();
    let (stream, _obj, _key) = hipec
        .vm_map_hipec(
            player,
            STREAM_PAGES * PAGE_SIZE,
            PolicyKind::Fifo.program(),
            64,
        )
        .expect("install stream policy");
    let bg = hipec.vm.create_task();
    let (hot, _) = hipec
        .vm
        .vm_allocate(bg, HOT_PAGES * PAGE_SIZE)
        .expect("hot set");
    let (bg_faults_h, stream_faults_h) = play(&mut hipec, player, stream, bg, hot);
    println!("HiPEC  : stream faults {stream_faults_h:>6}, background re-faults {bg_faults_h:>6}");

    println!(
        "\nthe stream faults the same either way (play-once data always misses),\n\
         but the private pool cuts the background application's re-faults {}x",
        if bg_faults_h > 0 {
            bg_faults / bg_faults_h.max(1)
        } else {
            bg_faults
        }
    );
}

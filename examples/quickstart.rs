//! Quickstart: install an application-specific page-replacement policy and
//! watch it serve faults.
//!
//! Run with: `cargo run --example quickstart`

use hipec_core::HipecKernel;
use hipec_policies::PolicyKind;
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

fn main() {
    // Boot the modified kernel: the paper's 64 MB Acer Altos with a 1994
    // SCSI paging disk, all in deterministic virtual time.
    let mut kernel = HipecKernel::new(KernelParams::paper_64mb());
    let task = kernel.vm.create_task();

    // Write (or pick) a policy. The library ships the paper's policies as
    // pseudo-code; `program()` runs them through the translator.
    let policy = PolicyKind::FifoSecondChance;
    let program = policy.program();
    println!(
        "installing {} ({} commands across {} events)",
        policy.name(),
        program.total_commands(),
        program.events.len()
    );

    // vm_allocate_hipec: a 1 MB anonymous region under our policy, with a
    // private pool of 128 frames (the paper's minFrame).
    let region_pages = 256u64;
    let (base, _object, key) = kernel
        .vm_allocate_hipec(task, region_pages * PAGE_SIZE, program, 128)
        .expect("policy installs");

    // Touch the region twice. The second sweep cycles 256 pages through
    // 128 private frames — every replacement decision is made by the
    // interpreted policy, inside the kernel, without any boundary crossing.
    for sweep in 1..=2 {
        for p in 0..region_pages {
            kernel
                .access_sync(task, VAddr(base.0 + p * PAGE_SIZE), false)
                .expect("access");
        }
        let c = kernel.container(key).expect("container");
        println!(
            "after sweep {sweep}: {} faults, {} commands interpreted, {} frames held",
            c.stats.faults, c.stats.commands, c.allocated
        );
    }

    let c = kernel.container(key).expect("container");
    println!(
        "\nvirtual time elapsed: {}; policy events run: {}",
        hipec_sim::SimDuration::from_ns(kernel.vm.now().as_ns()),
        c.stats.events
    );
    println!("security checker wakeups: {}", kernel.checker.wakeups);
}

//! The paper's motivating database scenario (§5.3): a nested-loops join
//! whose outer table is bigger than memory.
//!
//! A conventional LRU-like policy thrashes — every scan re-faults every
//! page. MRU, installed through HiPEC, keeps a stable prefix resident.
//!
//! Run with: `cargo run --example database_join`

use hipec_policies::{analytic, PolicyKind};
use hipec_vm::PAGE_SIZE;
use hipec_workloads::join::{run, JoinConfig};

fn main() {
    const MB: u64 = 1024 * 1024;
    // A scaled-down paper configuration: 12 MB outer table, 8 MB of
    // private memory, 4 KB inner table (64 tuples → 64 scans).
    let mut cfg = JoinConfig::paper(12 * MB);
    cfg.memory_bytes = 8 * MB;

    println!(
        "nested-loops join: outer {} MB, memory {} MB, {} scans\n",
        cfg.outer_bytes / MB,
        cfg.memory_bytes / MB,
        cfg.loops()
    );

    for kind in [PolicyKind::Lru, PolicyKind::Mru] {
        let r = run(&cfg, kind.program()).expect("join runs");
        println!(
            "{:<4}: elapsed {:>10} | {:>7} faults | {:>7} page-ins",
            kind.name(),
            r.elapsed.to_string(),
            r.faults,
            r.pageins
        );
    }

    let pf_l = analytic::pf_lru(cfg.outer_bytes, cfg.loops(), PAGE_SIZE);
    let pf_m = analytic::pf_mru(cfg.outer_bytes, cfg.memory_bytes, cfg.loops(), PAGE_SIZE);
    println!("\nanalytic fault counts (paper §5.3): PF_l = {pf_l}, PF_m = {pf_m}");
    println!("MRU is the right policy for cyclic scans: the kernel cannot know");
    println!("that — the application does, and HiPEC lets it say so.");
}

#!/usr/bin/env bash
# Tier-1 verification plus style gates. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tracing and jit compiled out: cargo test (vm + core, --no-default-features) =="
cargo test -q -p hipec-vm -p hipec-core --no-default-features

echo "== jit compiled out, tracing on: cargo test (core, --features trace) =="
cargo test -q -p hipec-core --no-default-features --features trace

echo "== metrics compiled out: cargo test (core, --features trace,jit) =="
# Histogram storage is unconditional; only the recording sites are gated.
# Kernel behavior, snapshot shapes and all tests must hold with the
# metrics feature off.
cargo test -q -p hipec-core --no-default-features --features trace,jit

echo "== native backend: seeded differential sweep (JIT vs interpreter) =="
# Bit-identical outcomes, KernelStats, virtual time and rendered traces
# across both executor backends, plus the pinned fault-path parity tests.
# The vendored proptest is seeded per test name; pin the seed anyway so
# this gate is the same run everywhere.
PROPTEST_SEED=0xD1FF517 cargo test -q -p hipec-integration --test jit

echo "== observability, device-table and executor modules carry no dead-code waivers =="
if grep -n '#\[allow(dead_code)\]' \
    crates/vm/src/trace.rs crates/core/src/trace.rs crates/core/src/metrics.rs \
    crates/bench/src/analyze.rs \
    crates/sim/src/hist.rs crates/core/src/hist.rs crates/core/src/obs.rs \
    crates/vm/src/device.rs crates/vm/src/lifecycle.rs crates/vm/src/breaker.rs \
    crates/core/src/health.rs \
    crates/core/src/jit.rs crates/core/src/executor.rs crates/lang/src/opt.rs \
    crates/workloads/src/tournament.rs crates/workloads/src/zipf_kv.rs \
    crates/workloads/src/web_cache.rs crates/policies/src/native.rs \
    crates/core/src/admission.rs crates/workloads/src/tenants.rs \
    crates/bench/src/bin/tenants_soak.rs \
    tests/jit.rs tests/tournament.rs; then
  echo "error: dead_code allowed in an observability, device-table or executor module" >&2
  exit 1
fi

echo "== streaming sinks: seeded soak is lossless, replayable and clean =="
SOAK_DIR="$(mktemp -d)"
trap 'rm -rf "$SOAK_DIR"' EXIT
cargo run -q --release --bin trace_soak -- \
  --seed 0x5EED --steps 1500 --out "$SOAK_DIR/a.jsonl" \
  --stats-export "$SOAK_DIR/a.prom" >/dev/null
cargo run -q --release --bin trace_soak -- \
  --seed 0x5EED --steps 1500 --out "$SOAK_DIR/b.jsonl" \
  --stats-export "$SOAK_DIR/b.prom" >/dev/null
if ! cmp -s "$SOAK_DIR/a.jsonl" "$SOAK_DIR/b.jsonl"; then
  echo "error: identically seeded soaks streamed different JSONL traces" >&2
  exit 1
fi
# The exported histogram snapshot (every latency bucket included) must be
# byte-identical too — this is the determinism gate for the hist/obs layer.
if ! cmp -s "$SOAK_DIR/a.prom" "$SOAK_DIR/b.prom"; then
  echo "error: identically seeded soaks exported different histogram snapshots" >&2
  exit 1
fi
if ! grep -q '^# TYPE hipec_latency_ns histogram' "$SOAK_DIR/a.prom"; then
  echo "error: stats export carries no latency histogram family" >&2
  exit 1
fi
echo "   traces replay bit-for-bit ($(wc -l <"$SOAK_DIR/a.jsonl") records," \
  "$(wc -l <"$SOAK_DIR/a.prom") export lines)"
# trace_analyze exits non-zero on any anomaly (frame leaks, retry storms,
# checker timeouts) or malformed input, so this line is the gate itself —
# the generous percentile gates additionally pin the latency tails. The
# substrate fault p99 on this seed is ~0.5 ms (delay-only plan, max
# injected delay 500 µs), so the 10 ms fault gate flags order-of-magnitude
# regressions; flush spans include queue wait under the soak's pressure
# (observed p99 ~268 ms), so the flush gate sits at 2 s.
cargo run -q --release --bin trace_analyze -- "$SOAK_DIR/a.jsonl" \
  --gate-p99-fault-ns 10000000 --gate-p99-flush-ns 2000000000

echo "== chaos: two-device degradation cycle completes, replays and analyzes clean =="
# chaos_soak itself exits non-zero unless the full cycle was observed on
# the faulty device (breaker trip -> close, quarantine -> ramped restore,
# invariants clean, no livelock, zero dropped records) while the clean
# device's breaker never trips and its container stays Healthy.
cargo run -q --release --bin chaos_soak -- \
  --seed 0xC4A05 --steps 2500 --out "$SOAK_DIR/c1.jsonl" >/dev/null
cargo run -q --release --bin chaos_soak -- \
  --seed 0xC4A05 --steps 2500 --out "$SOAK_DIR/c2.jsonl" >/dev/null
if ! cmp -s "$SOAK_DIR/c1.jsonl" "$SOAK_DIR/c2.jsonl"; then
  echo "error: identically seeded chaos soaks streamed different traces" >&2
  exit 1
fi
if ! grep -q '"type":"quarantined"' "$SOAK_DIR/c1.jsonl" ||
   ! grep -q '"type":"fallback_restored"' "$SOAK_DIR/c1.jsonl"; then
  echo "error: chaos trace shows no quarantine-then-recovery cycle" >&2
  exit 1
fi
# The storm must be confined to the second device: every breaker trip
# record names dev#1, never the boot device.
if ! grep -q '"type":"vm.breaker_trip","device":1' "$SOAK_DIR/c1.jsonl"; then
  echo "error: chaos trace shows no breaker trip on the faulty device" >&2
  exit 1
fi
if grep -q '"type":"vm.breaker_trip","device":0' "$SOAK_DIR/c1.jsonl"; then
  echo "error: the clean device's breaker tripped during the chaos soak" >&2
  exit 1
fi
echo "   chaos traces replay bit-for-bit ($(wc -l <"$SOAK_DIR/c1.jsonl") records)"
# Degradation-aware analysis, gated per device: collateral inside a
# device's own breaker window is expected; collateral on a closed-breaker
# device, an unclosed breaker or an unrestored container is an anomaly.
cargo run -q --release --bin trace_analyze -- "$SOAK_DIR/c1.jsonl"

echo "== chaos on flash: GC latency spikes degrade gracefully without spurious trips =="
# Same degradation cycle over a flash translation layer doing garbage
# collection. The binary's own gates additionally require visible wear
# (gc_pauses, max_wear, write amplification) and that the breaker EWMA
# tolerates erase stalls: every trip closes again and the breaker ends
# closed — GC pauses are slow successes, not failures.
cargo run -q --release --bin chaos_soak -- \
  --kind flash --seed 0xC4A05 --steps 2500 --out "$SOAK_DIR/cf1.jsonl" >/dev/null
cargo run -q --release --bin chaos_soak -- \
  --kind flash --seed 0xC4A05 --steps 2500 --out "$SOAK_DIR/cf2.jsonl" >/dev/null
if ! cmp -s "$SOAK_DIR/cf1.jsonl" "$SOAK_DIR/cf2.jsonl"; then
  echo "error: identically seeded flash chaos soaks streamed different traces" >&2
  exit 1
fi
echo "   flash chaos traces replay bit-for-bit ($(wc -l <"$SOAK_DIR/cf1.jsonl") records)"

echo "== unplug: lifecycle soak drains, escalates and replays bit-for-bit =="
# unplug_soak exits non-zero unless the whole lifecycle story completes:
# tier rebalancing cycles both ways, the mid-storm hot-unplug reaches
# Removed, the all-torn device's breaker exhausts its dead budget and the
# forced drain completes (devices_dead_drained), zero pages are abandoned
# and every drained page reads back through the survivor.
cargo run -q --release --bin unplug_soak -- \
  --seed 0xD15C --out "$SOAK_DIR/u1.jsonl" >/dev/null
cargo run -q --release --bin unplug_soak -- \
  --seed 0xD15C --out "$SOAK_DIR/u2.jsonl" >/dev/null
if ! cmp -s "$SOAK_DIR/u1.jsonl" "$SOAK_DIR/u2.jsonl"; then
  echo "error: identically seeded unplug soaks streamed different traces" >&2
  exit 1
fi
for ev in vm.device_draining vm.device_drained vm.device_dead vm.object_migrated; do
  if ! grep -q "\"type\":\"$ev\"" "$SOAK_DIR/u1.jsonl"; then
    echo "error: unplug trace carries no $ev event" >&2
    exit 1
  fi
done
echo "   unplug traces replay bit-for-bit ($(wc -l <"$SOAK_DIR/u1.jsonl") records)"

echo "== tournament: seeded short matrix is schema-v7, clean and replayable =="
# The tournament binary exits non-zero if any cell's invariant audit fails,
# so the run itself gates whole-kernel consistency across every policy ×
# workload × backend × plan combination. On top of that: the --json
# document must have the full shape (cross product, both backends,
# per-cell latency percentile columns, a complete ranking) and be
# bit-identical across reruns.
cargo run -q --release --bin tournament -- --short --json >"$SOAK_DIR/t1.json"
cargo run -q --release --bin tournament -- --short --json >"$SOAK_DIR/t2.json"
if ! cmp -s "$SOAK_DIR/t1.json" "$SOAK_DIR/t2.json"; then
  echo "error: identically seeded tournaments emitted different matrices" >&2
  exit 1
fi
python3 - "$SOAK_DIR/t1.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == 7, f"schema {doc['schema']} != 7"
data = doc["data"]
policies, workloads, cells = data["policies"], data["workloads"], data["cells"]
assert len(workloads) == 6, workloads
assert len(cells) == len(policies) * len(workloads) * 2 * 2, len(cells)
assert {c["backend"] for c in cells} == {"interpreter", "native"}
assert {c["plan"] for c in cells} == {"clean", "chaos"}
for c in cells:
    assert c["hits"] + c["faults"] <= c["accesses"], c
    for col in ("p50_fault_ns", "p99_fault_ns", "p99_event_ns", "p99_flush_ns"):
        assert isinstance(c[col], int), (col, c)
assert any(c["p99_event_ns"] > 0 for c in cells), "no cell recorded event latency"
assert [r["policy"] for r in data["ranking"]] and len(data["ranking"]) == len(policies)
print(f"   v7 matrix OK: {len(cells)} cells, winner {data['ranking'][0]['policy']}")
PY

echo "== tenants: multi-tenant QoS gauntlet gates isolation and replays bit-for-bit =="
# tenants_soak exits non-zero unless its own QoS gates hold (throttle
# tripped, throttled healthy tenants all eventually installed, healthy
# classes under the isolation bound, storm class visibly degraded). On
# top of that the v7 document must carry all three class rows with the
# per-class p99s the binary gated on, and be bit-identical across runs.
cargo run -q --release --bin tenants_soak -- --json >"$SOAK_DIR/q1.json"
cargo run -q --release --bin tenants_soak -- --json >"$SOAK_DIR/q2.json"
if ! cmp -s "$SOAK_DIR/q1.json" "$SOAK_DIR/q2.json"; then
  echo "error: identically seeded tenants soaks emitted different documents" >&2
  exit 1
fi
python3 - "$SOAK_DIR/q1.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == 7, f"schema {doc['schema']} != 7"
data = doc["data"]
assert data["admission_throttled"] > 0, "arrival bursts never tripped the throttle"
rows = {c["class"]: c for c in data["classes"]}
assert set(rows) == {"free", "standard", "premium"}, rows.keys()
bound = data["healthy_p99_bound_ns"]
for name in ("standard", "premium"):
    row = rows[name]
    assert row["installed"] == row["tenants"], f"{name}: uninstalled tenants"
    assert row["faults"] > 0, f"{name}: served no faults"
    assert 0 < row["p99_fault_ns"] <= bound, f"{name}: p99 {row['p99_fault_ns']} vs bound {bound}"
healthy_worst = max(rows[n]["p99_fault_ns"] for n in ("standard", "premium"))
assert rows["free"]["p99_fault_ns"] > healthy_worst, "storm class did not degrade"
keys = {r["key"] for r in data["kernel"]["latency"] if r["metric"] == "class_fault"}
assert keys == {"free", "standard", "premium"}, keys
print(f"   v7 tenants OK: free p99 {rows['free']['p99_fault_ns']} ns"
      f" > healthy worst {healthy_worst} ns (bound {bound} ns)")
PY

echo "verify: OK"

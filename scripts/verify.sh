#!/usr/bin/env bash
# Tier-1 verification plus style gates. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tracing compiled out: cargo test (vm + core, --no-default-features) =="
cargo test -q -p hipec-vm -p hipec-core --no-default-features

echo "== observability modules carry no dead-code waivers =="
if grep -n '#\[allow(dead_code)\]' \
    crates/vm/src/trace.rs crates/core/src/trace.rs crates/core/src/metrics.rs; then
  echo "error: dead_code allowed in an observability module" >&2
  exit 1
fi

echo "verify: OK"

#!/usr/bin/env bash
# Tier-1 verification plus style gates. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "verify: OK"
